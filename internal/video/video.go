// Package video extends HEBS from single images to frame sequences,
// the direction the paper's conclusion points to for future work.
// Per-frame backlight scaling is free power, but a backlight factor
// that jumps between consecutive frames is visible as flicker; the
// temporal policy here rate-limits β between frames (slew-rate
// hysteresis) and the package provides a flicker metric plus synthetic
// sequence generators (pans, fades, scene cuts) to exercise it.
package video

import (
	"context"
	"errors"
	"fmt"
	"image"
	"math"
	"time"

	"hebs/internal/backlight"
	"hebs/internal/core"
	"hebs/internal/gray"
	"hebs/internal/histogram"
	"hebs/internal/invariant"
	"hebs/internal/obs"
	"hebs/internal/power"
	"hebs/internal/transform"
)

// Sequence is an ordered list of equally-sized frames.
type Sequence struct {
	Frames []*gray.Image
}

// NewSequence validates frame sizes and wraps them.
func NewSequence(frames []*gray.Image) (*Sequence, error) {
	if len(frames) == 0 {
		return nil, errors.New("video: empty sequence")
	}
	for i, f := range frames {
		if f == nil {
			return nil, fmt.Errorf("video: nil frame %d", i)
		}
	}
	w, h := frames[0].W, frames[0].H
	for i, f := range frames {
		if f.W != w || f.H != h {
			return nil, fmt.Errorf("video: frame %d is %dx%d, want %dx%d", i, f.W, f.H, w, h)
		}
	}
	return &Sequence{Frames: frames}, nil
}

// Pan generates a sequence by sliding a viewport across a larger base
// image, dx pixels per frame (wrapping around).
func Pan(base *gray.Image, viewW, viewH, frames, dx int) (*Sequence, error) {
	if base == nil {
		return nil, errors.New("video: nil base image")
	}
	if viewW <= 0 || viewH <= 0 || viewW > base.W || viewH > base.H {
		return nil, fmt.Errorf("video: viewport %dx%d does not fit base %dx%d",
			viewW, viewH, base.W, base.H)
	}
	if frames <= 0 {
		return nil, fmt.Errorf("video: need positive frame count, got %d", frames)
	}
	out := make([]*gray.Image, frames)
	for i := range out {
		x0 := (i * dx) % (base.W - viewW + 1)
		if x0 < 0 {
			x0 += base.W - viewW + 1
		}
		sub, err := base.SubImage(image.Rect(x0, 0, x0+viewW, viewH))
		if err != nil {
			return nil, err
		}
		out[i] = sub
	}
	return NewSequence(out)
}

// Fade generates a linear cross-fade from a to b over the given number
// of frames (inclusive of both endpoints).
func Fade(a, b *gray.Image, frames int) (*Sequence, error) {
	if a == nil || b == nil {
		return nil, errors.New("video: nil endpoint image")
	}
	if a.W != b.W || a.H != b.H {
		return nil, errors.New("video: endpoint sizes differ")
	}
	if frames < 2 {
		return nil, fmt.Errorf("video: fade needs >= 2 frames, got %d", frames)
	}
	out := make([]*gray.Image, frames)
	for i := range out {
		t := float64(i) / float64(frames-1)
		f := gray.New(a.W, a.H)
		for p := range f.Pix {
			v := (1-t)*float64(a.Pix[p]) + t*float64(b.Pix[p])
			f.Pix[p] = uint8(math.Round(v))
		}
		out[i] = f
	}
	return NewSequence(out)
}

// Cut concatenates two sequences (a scene cut).
func Cut(a, b *Sequence) (*Sequence, error) {
	if a == nil || b == nil {
		return nil, errors.New("video: nil sequence")
	}
	return NewSequence(append(append([]*gray.Image{}, a.Frames...), b.Frames...))
}

// Policy configures temporal backlight control.
type Policy struct {
	// MaxStep is the largest allowed |Δβ| between consecutive frames
	// (slew-rate limit). 0 disables smoothing. A cut larger than
	// CutThreshold bypasses the limit (scene changes mask flicker).
	MaxStep float64
	// CutThreshold: when the target β changes by more than this, the
	// policy treats it as a scene cut and snaps immediately. 0 disables
	// snapping.
	CutThreshold float64
	// ReuseThreshold enables the static-scene optimization: when the
	// earth-mover's distance between the running histogram estimate and
	// the new frame's histogram is below this many levels, the previous
	// frame's admissible range is reused instead of re-running the
	// per-frame range search (the expensive step). 0 disables reuse.
	ReuseThreshold float64
	// DeltaAnalysis enables tiled incremental histogram analysis: each
	// frame is diffed against the previous one via per-tile checksums,
	// only changed tiles are re-binned (subtract-stale/add-fresh keeps
	// the global histogram exactly equal to a from-scratch scan), and a
	// frame whose pixels did not change at all is served by the fused
	// fast path — cached plan, one word-packed Λ traversal, memoized
	// distortion/power numbers. Outputs are byte-identical to a run
	// with DeltaAnalysis off; see DESIGN.md "Incremental delta analysis".
	DeltaAnalysis bool
	// TileSize is the delta-analysis tile edge in pixels (0 selects
	// histogram.DefaultTileSize). Ignored unless DeltaAnalysis is set.
	TileSize int
	// Backend selects the backlight architecture. nil and the global
	// CCFL backend walk the classic per-frame pipeline (the CCFL
	// backend resolves Options.Subsystem from its lamp model, keeping
	// outputs byte-identical to the nil default); a zoned backend (LED
	// array) or a non-subsystem power model (OLED) routes the clip
	// through the per-zone walk, where MaxStep/CutThreshold govern each
	// zone's β track and DeltaAnalysis replays certified-identical
	// frames. ReuseThreshold (the histogram-estimator reuse) applies
	// only to the classic walk.
	Backend backlight.Backend
	// HEBS options applied per frame. DynamicRange/budget semantics as
	// in core.Options.
	Options core.Options
	// Engine, when non-nil, runs the per-frame pipeline through the
	// given engine so its frame-buffer pools and plan LRU persist
	// across clips — the steady-state zero-allocation path. Nil means
	// a private engine per Process call (pooling still amortizes
	// across the clip's frames).
	Engine *core.Engine
	// Workers selects the pipelined parallel scheduler: 0 or 1 (the
	// default) walks frames serially, n > 1 runs the per-frame
	// Analyze/Plan/Apply work on up to n goroutines with the
	// order-dependent β-slew/cut governor kept as a cheap serial pass,
	// and a negative value selects GOMAXPROCS. Outputs — frames, β
	// sequences, driver programs — are byte-identical at every
	// setting; see DESIGN.md "Parallel execution".
	Workers int
	// frameOffset shifts the frame indices reported on observability
	// spans; ProcessWithCutDetection sets it so scene-local runs still
	// report clip-global frame numbers.
	frameOffset int
}

// FrameResult records one processed frame.
type FrameResult struct {
	// TargetBeta is the per-frame HEBS optimum.
	TargetBeta float64
	// Beta is the applied (smoothed) backlight factor.
	Beta float64
	// Range is the dynamic range corresponding to Beta.
	Range int
	// SavingPercent is the subsystem power saving for this frame.
	SavingPercent float64
	// Distortion is the achieved distortion at the applied range.
	Distortion float64
	// Zones is the backlight zone count that produced this frame (0 on
	// the classic global walk). On the zoned walk TargetBeta and Beta
	// are the zone means and Range is the largest zone range.
	Zones int
	// ZoneBetaSpread is max−min of the applied per-zone β field.
	ZoneBetaSpread float64
}

// Result is a processed sequence.
type Result struct {
	Frames []FrameResult
	// MeanSaving is the average per-frame power saving.
	MeanSaving float64
	// Flicker metrics over the applied β track.
	MeanAbsDeltaBeta float64
	MaxAbsDeltaBeta  float64
}

// Process runs per-frame HEBS with the temporal policy. The per-frame
// target β comes from the frame's own HEBS solution; the applied β is
// a fast-attack / slow-decay track: increases (brightening) are applied
// immediately because a β below the frame's target would violate its
// distortion budget, while decreases (dimming) are slew-rate limited by
// MaxStep — a gradual dim is far less visible than a gradual brighten
// is harmful. A target drop larger than CutThreshold is treated as a
// scene cut and snaps immediately (the cut masks the flicker).
func Process(seq *Sequence, pol Policy) (*Result, error) {
	return ProcessContext(context.Background(), seq, pol)
}

// ProcessContext is Process with cooperative cancellation: the context
// is checked before each frame (and inside the pipeline stages), and a
// cancellation mid-clip returns the frames completed so far — already
// aggregated — together with ctx's error, so a partial timeline can
// still be reported. Pipeline frame buffers are drawn from (and
// returned to) the policy's engine, so a steady-state clip allocates
// almost nothing per frame.
func ProcessContext(ctx context.Context, seq *Sequence, pol Policy) (*Result, error) {
	if seq == nil || len(seq.Frames) == 0 {
		return nil, errors.New("video: empty sequence")
	}
	if pol.MaxStep < 0 || pol.CutThreshold < 0 || pol.ReuseThreshold < 0 || pol.TileSize < 0 {
		return nil, fmt.Errorf("video: negative policy parameters %+v", pol)
	}
	if pol.Backend != nil {
		if c, ok := pol.Backend.(*backlight.CCFL); ok {
			// The global lamp walks the classic pipeline: resolve the
			// power subsystem from the backend and fall through, so the
			// outputs stay byte-identical to a run without a backend.
			if pol.Options.Subsystem == nil {
				sub := c.Subsystem()
				pol.Options.Subsystem = &sub
			}
		} else {
			return processZonedClip(ctx, seq, pol)
		}
	}
	if len(seq.Frames) > 1 {
		if w := policyWorkers(pol.Workers, len(seq.Frames)); w > 1 {
			return processPipelined(ctx, seq, pol, w)
		}
	}
	eng := pol.Engine
	if eng == nil {
		eng = core.NewEngine(core.EngineOptions{})
	}
	sub := power.DefaultSubsystem
	if pol.Options.Subsystem != nil {
		sub = *pol.Options.Subsystem
	}
	sp := pol.Options.Trace.Child("video.Process")
	defer sp.End()
	sp.SetInt("frames", len(seq.Frames))
	mSequences.Inc()
	res := &Result{}
	prevBeta := math.NaN()
	prevRange := 0
	var est *histogram.Estimator
	var frameHist histogram.Histogram // reused across frames (estimator copies)
	if pol.ReuseThreshold > 0 {
		var err error
		est, err = histogram.NewEstimator(0.5)
		if err != nil {
			return nil, err
		}
	}
	var ds *deltaState
	var dsOwnRange int
	var dsOwnValid bool
	var dsMeas deltaMeas
	if pol.DeltaAnalysis {
		d, err := acquireDelta(seq.Frames[0].W, seq.Frames[0].H, pol.TileSize, pol.Options)
		if err != nil {
			return nil, err
		}
		ds = d
		defer releaseDelta(ds)
		// Work on captured copies and invalidate the pooled memoizations
		// until a frame completes cleanly: an error between the tile
		// update and the measurement would otherwise leave stale range /
		// measurement records paired with a newer pixel reference.
		dsOwnRange, dsOwnValid, dsMeas = ds.ownRange, ds.ownValid, ds.meas
		ds.ownValid = false
		ds.meas.valid = false
	}
	processFrame := func(i int, frame *gray.Image) (FrameResult, error) {
		start := time.Now()
		fsp := sp.Child("video.frame")
		defer fsp.End()
		fsp.SetInt("frame", pol.frameOffset+i)
		defer func() { mFrameLatency.ObserveDuration(time.Since(start)) }()
		mFrames.Inc()
		gInflight.Add(1)
		defer gInflight.Add(-1)
		reused := false
		opts := pol.Options
		opts.Trace = fsp // attribute the pipeline run to this frame
		if est != nil {
			h := &frameHist
			histogram.OfInto(frame, h)
			if est.Ready() && prevRange > 0 {
				d, err := est.Distance(h)
				if err != nil {
					return FrameResult{}, err
				}
				if d < pol.ReuseThreshold {
					// Static scene: skip the range search, keep the
					// previous admissible range (which makes the
					// per-image exact search moot as well).
					opts.DynamicRange = prevRange
					opts.MaxDistortionPercent = 0
					opts.ExactSearch = false
					fsp.SetBool("range_reused", true)
					reused = true
					mRangeReuse.Inc()
				}
			}
			if err := est.Observe(h); err != nil {
				return FrameResult{}, err
			}
		}
		r, err := eng.Process(ctx, frame, opts)
		if err != nil {
			return FrameResult{}, fmt.Errorf("video: frame %d: %w", i, err)
		}
		prevRange = r.Range
		target := r.Beta
		applied := target
		cutSnap := false
		if !math.IsNaN(prevBeta) && pol.MaxStep > 0 {
			delta := target - prevBeta
			isCut := pol.CutThreshold > 0 && math.Abs(delta) > pol.CutThreshold
			cutSnap = isCut
			// Brightening (delta >= 0) is immediate: staying below the
			// frame's target would exceed its distortion budget. Dimming
			// is slew-limited unless a scene cut masks it.
			if delta < -pol.MaxStep && !isCut {
				applied = prevBeta - pol.MaxStep
			}
			if isCut {
				fsp.SetBool("cut_snap", true)
				mCutSnaps.Inc()
			}
		}
		fr := FrameResult{TargetBeta: target, Beta: applied}
		slewed := false
		//hebslint:allow floateq applied is assigned from target unless slew-limited
		if applied != target {
			// Re-run the pipeline at the applied range so the image is
			// transformed consistently with the actual backlight.
			fsp.SetBool("slew_limited", true)
			slewed = true
			mSlewLimited.Inc()
			rng, err := power.RangeForBeta(applied, transform.Levels)
			if err != nil {
				r.Release()
				return FrameResult{}, err
			}
			opts := pol.Options
			opts.Trace = fsp
			opts.DynamicRange = rng
			opts.MaxDistortionPercent = 0
			opts.ExactSearch = false
			r.Release()
			r, err = eng.Process(ctx, frame, opts)
			if err != nil {
				return FrameResult{}, fmt.Errorf("video: frame %d (smoothed): %w", i, err)
			}
		}
		fr.Range = r.Range
		fr.Beta = r.Beta
		fr.Distortion = r.AchievedDistortion
		planCached := r.PlanCached
		saving, err := sub.SavingPercent(frame, r.Transformed, r.Beta)
		r.Release()
		if err != nil {
			return FrameResult{}, err
		}
		fr.SavingPercent = saving
		if rec := obs.Flight(); rec != nil {
			var hh uint64
			if est != nil {
				hh = flightHistHash(&frameHist)
			}
			rec.Record(obs.FrameRecord{
				Frame:       pol.frameOffset + i,
				TargetBeta:  fr.TargetBeta,
				Beta:        fr.Beta,
				Range:       fr.Range,
				HistHash:    hh,
				PlanCached:  planCached,
				RangeReused: reused,
				CutSnap:     cutSnap,
				SlewLimited: slewed,
				Workers:     1,
				Seconds:     time.Since(start).Seconds(),
			})
		}
		if invariant.Enabled {
			invariant.AssertBeta("video: target β", fr.TargetBeta)
			invariant.AssertBeta("video: applied β", fr.Beta)
			if pol.MaxStep > 0 && !math.IsNaN(prevBeta) && !cutSnap {
				// The fast-attack/slow-decay track may only dim by MaxStep
				// per frame (plus the 1/(G−1) quantization of mapping β
				// back through RangeForBeta's floor).
				invariant.Assert(prevBeta-fr.Beta <= pol.MaxStep+1.0/float64(transform.Levels-1)+1e-9,
					"video: dimming slew %v exceeds MaxStep %v", prevBeta-fr.Beta, pol.MaxStep)
			}
		}
		fsp.SetFloat("target_beta", fr.TargetBeta)
		fsp.SetFloat("applied_beta", fr.Beta)
		fsp.SetInt("range", fr.Range)
		fsp.SetFloat("saving_pct", fr.SavingPercent)
		return fr, nil
	}
	// processFrameDelta is the incremental-analysis variant of the walk:
	// the per-frame histogram is maintained by re-binning only changed
	// tiles, an unchanged frame replays its memoized own-range decision
	// instead of searching, and an unchanged frame at an unchanged
	// operating point skips measurement entirely (fused fast path).
	// Every decision replays a deterministic computation on certified
	// identical pixels, so the FrameResults are byte-identical to
	// processFrame's.
	processFrameDelta := func(i int, frame *gray.Image) (FrameResult, error) {
		start := time.Now()
		fsp := sp.Child("video.frame")
		defer fsp.End()
		fsp.SetInt("frame", pol.frameOffset+i)
		defer func() { mFrameLatency.ObserveDuration(time.Since(start)) }()
		mFrames.Inc()
		gInflight.Add(1)
		defer gInflight.Add(-1)
		changed, total, err := ds.delta.Update(frame, &frameHist)
		if err != nil {
			return FrameResult{}, fmt.Errorf("video: frame %d: %w", i, err)
		}
		mTilesRebinned.Add(int64(changed))
		ratio := float64(changed) / float64(total)
		fsp.SetFloat("tile_change_ratio", ratio)
		// identical: this frame's pixels are certified equal to the
		// previous frame's (the pooled reference frame for frame 0).
		identical := changed == 0
		reused := false
		opts := pol.Options
		opts.Trace = fsp
		if est != nil {
			if est.Ready() && prevRange > 0 {
				d, err := est.Distance(&frameHist)
				if err != nil {
					return FrameResult{}, err
				}
				if d < pol.ReuseThreshold {
					fsp.SetBool("range_reused", true)
					reused = true
					mRangeReuse.Inc()
				}
			}
			if err := est.Observe(&frameHist); err != nil {
				return FrameResult{}, err
			}
		}
		// Resolve the frame's range exactly as the plain walk would:
		// reuse inherits the previous range; otherwise the frame's own
		// search runs — unless its pixels are certified identical to the
		// memoized own-range decision's, which makes the search a
		// deterministic replay (SelectRange covers the direct/curve/exact
		// modes, so the replay covers them too).
		var rng int
		ownSearched := false
		switch {
		case reused:
			rng = prevRange
		case identical && dsOwnValid:
			rng = dsOwnRange
		default:
			rng, _, err = eng.SelectRange(ctx, frame, opts)
			if err != nil {
				return FrameResult{}, fmt.Errorf("video: frame %d: %w", i, err)
			}
			ownSearched = true
		}
		prevRange = rng
		target, err := power.BetaForRange(rng, transform.Levels)
		if err != nil {
			return FrameResult{}, fmt.Errorf("video: frame %d: %w", i, err)
		}
		applied := target
		cutSnap := false
		if !math.IsNaN(prevBeta) && pol.MaxStep > 0 {
			delta := target - prevBeta
			isCut := pol.CutThreshold > 0 && math.Abs(delta) > pol.CutThreshold
			cutSnap = isCut
			if delta < -pol.MaxStep && !isCut {
				applied = prevBeta - pol.MaxStep
			}
			if isCut {
				fsp.SetBool("cut_snap", true)
				mCutSnaps.Inc()
			}
		}
		applyRange := rng
		slewed := false
		//hebslint:allow floateq applied is assigned from target unless slew-limited
		if applied != target {
			fsp.SetBool("slew_limited", true)
			slewed = true
			mSlewLimited.Inc()
			applyRange, err = power.RangeForBeta(applied, transform.Levels)
			if err != nil {
				return FrameResult{}, err
			}
		}
		opts.DynamicRange = applyRange
		opts.MaxDistortionPercent = 0
		opts.ExactSearch = false
		fr := FrameResult{TargetBeta: target}
		var planCached bool
		fused := false
		if identical && dsMeas.valid && dsMeas.rng == applyRange {
			// Identical pixels at an identical operating point: the
			// distortion/power numbers replay from the previous frame, and
			// the only remaining work is the packed Λ traversal.
			out, cached, err := eng.FusedApply(ctx, frame, &frameHist, applyRange, opts)
			if err != nil {
				return FrameResult{}, fmt.Errorf("video: frame %d: %w", i, err)
			}
			eng.ReleaseImage(out)
			planCached = cached
			fused = true
			fsp.SetBool("fused_apply", true)
			mFastPath.Inc()
			fr.Beta = dsMeas.beta
			fr.Range = dsMeas.rng
			fr.Distortion = dsMeas.distortion
			fr.SavingPercent = dsMeas.saving
		} else {
			r, err := eng.AnalyzeApply(ctx, frame, &frameHist, applyRange, opts)
			if err != nil {
				if slewed {
					return FrameResult{}, fmt.Errorf("video: frame %d (smoothed): %w", i, err)
				}
				return FrameResult{}, fmt.Errorf("video: frame %d: %w", i, err)
			}
			fr.Range = r.Range
			fr.Beta = r.Beta
			fr.Distortion = r.AchievedDistortion
			planCached = r.PlanCached
			saving, err := sub.SavingPercent(frame, r.Transformed, r.Beta)
			r.Release()
			if err != nil {
				return FrameResult{}, err
			}
			fr.SavingPercent = saving
			dsMeas = deltaMeas{rng: applyRange, beta: fr.Beta,
				distortion: fr.Distortion, saving: fr.SavingPercent, valid: true}
		}
		// Maintain the own-range memo: a fresh search anchors it to this
		// frame's pixels; an inherited range on changed pixels orphans it
		// (the frame's own search never ran); identical pixels leave it
		// as-is. Then re-validate the pooled records — the frame completed
		// cleanly, so tile reference, range memo and measurement memo are
		// mutually consistent again.
		if ownSearched {
			dsOwnRange, dsOwnValid = rng, true
		} else if reused && !identical {
			dsOwnValid = false
		}
		ds.ownRange, ds.ownValid = dsOwnRange, dsOwnValid
		ds.meas = dsMeas
		if rec := obs.Flight(); rec != nil {
			rec.Record(obs.FrameRecord{
				Frame:           pol.frameOffset + i,
				TargetBeta:      fr.TargetBeta,
				Beta:            fr.Beta,
				Range:           fr.Range,
				HistHash:        flightHistHash(&frameHist),
				PlanCached:      planCached,
				RangeReused:     reused,
				CutSnap:         cutSnap,
				SlewLimited:     slewed,
				FusedApply:      fused,
				TileChangeRatio: ratio,
				Workers:         1,
				Seconds:         time.Since(start).Seconds(),
			})
		}
		if invariant.Enabled {
			invariant.AssertBeta("video: target β", fr.TargetBeta)
			invariant.AssertBeta("video: applied β", fr.Beta)
			if pol.MaxStep > 0 && !math.IsNaN(prevBeta) && !cutSnap {
				invariant.Assert(prevBeta-fr.Beta <= pol.MaxStep+1.0/float64(transform.Levels-1)+1e-9,
					"video: dimming slew %v exceeds MaxStep %v", prevBeta-fr.Beta, pol.MaxStep)
			}
		}
		fsp.SetFloat("target_beta", fr.TargetBeta)
		fsp.SetFloat("applied_beta", fr.Beta)
		fsp.SetInt("range", fr.Range)
		fsp.SetFloat("saving_pct", fr.SavingPercent)
		return fr, nil
	}
	frameFn := processFrame
	if ds != nil {
		frameFn = processFrameDelta
	}
	var clipErr error
	for i, frame := range seq.Frames {
		if err := ctx.Err(); err != nil {
			clipErr = err
			break
		}
		fr, err := frameFn(i, frame)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				// Cancellation surfaced mid-frame: keep the completed
				// prefix and report the cancellation itself.
				clipErr = cerr
				break
			}
			return nil, err
		}
		res.Frames = append(res.Frames, fr)
		prevBeta = fr.Beta
	}
	// Aggregate (over the completed prefix when cancelled).
	res.aggregate()
	if clipErr != nil {
		return res, clipErr
	}
	return res, nil
}

// aggregate computes the clip-level summary — mean saving and the
// flicker statistics of the applied β track — over the completed
// frames and publishes the clip gauges. Both the serial walk and the
// pipelined scheduler reduce through this one helper, over frames in
// index order, so their summaries are bit-identical.
func (r *Result) aggregate() {
	var sumSave, sumDelta, maxDelta float64
	for i, f := range r.Frames {
		sumSave += f.SavingPercent
		if i > 0 {
			d := math.Abs(f.Beta - r.Frames[i-1].Beta)
			sumDelta += d
			if d > maxDelta {
				maxDelta = d
			}
		}
	}
	if len(r.Frames) > 0 {
		r.MeanSaving = sumSave / float64(len(r.Frames))
	}
	if len(r.Frames) > 1 {
		r.MeanAbsDeltaBeta = sumDelta / float64(len(r.Frames)-1)
	}
	r.MaxAbsDeltaBeta = maxDelta
	gMeanSaving.Set(r.MeanSaving)
	gMeanAbsDelta.Set(r.MeanAbsDeltaBeta)
	gMaxAbsDelta.Set(r.MaxAbsDeltaBeta)
}
