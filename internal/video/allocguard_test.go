package video

import (
	"context"
	"strings"
	"testing"

	"hebs/internal/core"
	"hebs/internal/noalloc"
)

// steadyStateAllocBudget is the checked-in steady-state clip cost:
// BENCH_pipeline.json records 23 allocs/op for video/steady16 (one
// warm 16-frame static clip through a shared engine), and this guard
// keeps that number from silently creeping. The budget is the
// irreducible per-clip bookkeeping — the Result and its frame slices,
// the per-clip span — not per-frame work: the per-frame loop itself
// is proven allocation-free by hebsvet's //hebs:noalloc gate.
const steadyStateAllocBudget = 23

// TestSteadyStateAllocGuard is the bench guard for the headline
// steady-state number, run as a test so `go test ./internal/video`
// catches an allocation regression without a benchmark round-trip. On
// failure it prints the module's //hebs:noalloc inventory (the
// `hebsvet -list` rendering): per-frame regressions show up as ~16×
// jumps and the function that started allocating is one of these —
// `go run ./cmd/hebsvet -v` names the exact escaping expression.
func TestSteadyStateAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard skipped in -short mode")
	}
	seq := steadyClip(t)
	pol := steadyPolicy()
	pol.Engine = core.NewEngine(core.EngineOptions{})
	ctx := context.Background()
	// Warm the pools and the plan cache outside the measurement.
	if _, err := ProcessContext(ctx, seq, pol); err != nil {
		t.Fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ProcessContext(ctx, seq, pol); err != nil {
				b.Fatal(err)
			}
		}
	})
	if allocs := res.AllocsPerOp(); allocs > steadyStateAllocBudget {
		inv, err := noalloc.Scan("../..")
		suspects := ""
		if err != nil {
			suspects = "(noalloc inventory unavailable: " + err.Error() + ")"
		} else {
			var sb strings.Builder
			inv.WriteList(&sb)
			suspects = sb.String()
		}
		t.Errorf("steady-state clip allocates %d objects/op; budget %d (BENCH_pipeline.json video/steady16)\n"+
			"per-frame leaks show up as ~16x jumps; the //hebs:noalloc inventory below names the hot-path\n"+
			"functions to re-check with `go run ./cmd/hebsvet -v`:\n%s",
			allocs, steadyStateAllocBudget, suspects)
	}
}
