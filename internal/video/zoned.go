// Zoned temporal control: the per-zone walk a zone-capable backlight
// backend routes a clip through. Each zone carries its own
// fast-attack / slow-decay β track — brightening is immediate (a zone
// below its target would violate its distortion budget), dimming is
// limited to the effective per-frame slew (the policy's MaxStep
// intersected with the backend's hardware MaxSlew) — expressed as
// per-zone floors handed to core's zoned engine path, which applies
// them before spatial smoothing so the halo relaxation still bounds
// the final field. A mean target drop beyond CutThreshold is a scene
// cut: the frame re-runs without floors and the field snaps.
package video

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"time"

	"hebs/internal/core"
	"hebs/internal/invariant"
	"hebs/internal/obs"
	"hebs/internal/transform"
)

var (
	mZonedFrames = obs.NewCounter("video.zoned.frames_total")
	mZonedReplay = obs.NewCounter("video.zoned.frames_replayed_total")
)

// effectiveSlew intersects the policy's slew limit with the hardware's
// (0 means unlimited on either side).
func effectiveSlew(policy, hardware float64) float64 {
	switch {
	case policy <= 0:
		return hardware
	case hardware <= 0:
		return policy
	case hardware < policy:
		return hardware
	default:
		return policy
	}
}

// processZonedClip walks a clip through the per-zone engine path.
// Frames run serially; intra-frame parallelism (the zone fan-out)
// comes from the engine's worker pool, so Policy.Workers sizes that
// pool when the policy does not bring its own engine.
func processZonedClip(ctx context.Context, seq *Sequence, pol Policy) (*Result, error) {
	b := pol.Backend
	g := b.Grid()
	zones := g.Zones()
	eng := pol.Engine
	if eng == nil {
		// The default engine joins the process-wide sharded plan cache,
		// which holds many zone grids' worth of plans — no per-walk
		// cache sizing needed.
		eng = core.NewEngine(core.EngineOptions{Workers: pol.Workers})
	}
	step := effectiveSlew(pol.MaxStep, b.MaxSlew())
	quant := 1.0 / float64(transform.Levels-1)

	sp := pol.Options.Trace.Child("video.ProcessZoned")
	defer sp.End()
	sp.SetInt("frames", len(seq.Frames))
	sp.SetInt("zones", zones)
	sp.SetString("backend", b.Name())
	mSequences.Inc()

	res := &Result{}
	prev := make([]float64, 0, zones) // applied β field of the previous frame
	floors := make([]float64, zones)
	var prevFR FrameResult
	prevStable := false // previous frame ran floor-free at its own targets
	var prevPix []byte  // previous frame's pixels (DeltaAnalysis only)

	var clipErr error
	for i, frame := range seq.Frames {
		if err := ctx.Err(); err != nil {
			clipErr = err
			break
		}
		start := time.Now()
		fsp := sp.Child("video.frame")
		fsp.SetInt("frame", pol.frameOffset+i)
		mFrames.Inc()
		mZonedFrames.Inc()
		gInflight.Add(1)

		// Certified-identical replay: same pixels as the previous frame
		// while its track was stable (no floor bound, no snap) replay
		// the same deterministic decision without re-running the engine.
		if pol.DeltaAnalysis && prevStable && prevPix != nil && bytes.Equal(prevPix, frame.Pix) {
			fr := prevFR
			res.Frames = append(res.Frames, fr)
			mZonedReplay.Inc()
			fsp.SetBool("zoned_replay", true)
			recordZonedFrame(fsp, fr)
			gInflight.Add(-1)
			fsp.End()
			continue
		}

		opts := pol.Options
		opts.Trace = fsp
		floored := false
		if len(prev) == zones && step > 0 {
			for k, p := range prev {
				f := p - step
				if f < 0 {
					f = 0
				}
				floors[k] = f
			}
			opts.ZoneBetaFloor = floors
			floored = true
		}
		zr, err := eng.ProcessZoned(ctx, frame, opts, b)
		if err != nil {
			gInflight.Add(-1)
			fsp.End()
			if cerr := ctx.Err(); cerr != nil {
				clipErr = cerr
				break
			}
			return nil, fmt.Errorf("video: frame %d: %w", i, err)
		}

		// Scene-cut detection on the zone targets: a mean drop beyond
		// the threshold means holding the old field serves a scene that
		// no longer exists — snap by re-running floor-free.
		cutSnap := false
		if floored && pol.CutThreshold > 0 {
			meanDelta := 0.0
			for k := range zr.Zones {
				meanDelta += math.Abs(zr.Zones[k].TargetBeta - prev[k])
			}
			meanDelta /= float64(zones)
			if meanDelta > pol.CutThreshold {
				zr.Release()
				opts.ZoneBetaFloor = nil
				zr, err = eng.ProcessZoned(ctx, frame, opts, b)
				if err != nil {
					gInflight.Add(-1)
					fsp.End()
					if cerr := ctx.Err(); cerr != nil {
						clipErr = cerr
						break
					}
					return nil, fmt.Errorf("video: frame %d (cut): %w", i, err)
				}
				cutSnap = true
				floored = false
				fsp.SetBool("cut_snap", true)
				mCutSnaps.Inc()
			}
		}

		meanTarget := 0.0
		maxRange := 0
		stable := true
		prev = prev[:0]
		for k := range zr.Zones {
			z := &zr.Zones[k]
			meanTarget += z.TargetBeta
			if z.Range > maxRange {
				maxRange = z.Range
			}
			prev = append(prev, z.Beta)
			// The track is stable once the applied field sits at the
			// zone targets up to drive quantization — then floors can
			// no longer bind and identical frames may replay.
			if z.Beta-z.TargetBeta > quant+1e-12 {
				stable = false
			}
			if invariant.Enabled {
				invariant.AssertBeta("video: zone β", z.Beta)
				if floored {
					invariant.Assert(floors[k]-z.Beta <= 1e-9,
						"video: zone %d β %v fell below its floor %v", k, z.Beta, floors[k])
				}
			}
		}
		meanTarget /= float64(zones)

		fr := FrameResult{
			TargetBeta:     meanTarget,
			Beta:           zr.BetaMean,
			Range:          maxRange,
			SavingPercent:  zr.PowerSavingPercent,
			Distortion:     zr.AchievedDistortion,
			Zones:          zones,
			ZoneBetaSpread: zr.BetaSpread,
		}
		smooth := zr.SmoothSweeps
		zr.Release()

		if floored && fr.Beta-fr.TargetBeta > quant+1e-12 {
			fsp.SetBool("slew_limited", true)
			mSlewLimited.Inc()
		}
		res.Frames = append(res.Frames, fr)
		prevFR = fr
		prevStable = stable && !cutSnap
		if pol.DeltaAnalysis {
			if prevPix == nil {
				prevPix = make([]byte, len(frame.Pix))
			}
			copy(prevPix, frame.Pix)
		}
		recordZonedFrame(fsp, fr)
		if rec := obs.Flight(); rec != nil {
			rec.Record(obs.FrameRecord{
				Frame:          pol.frameOffset + i,
				TargetBeta:     fr.TargetBeta,
				Beta:           fr.Beta,
				Range:          fr.Range,
				CutSnap:        cutSnap,
				Zones:          zones,
				ZoneBetaSpread: fr.ZoneBetaSpread,
				SmoothIters:    smooth,
				Workers:        1,
				Seconds:        time.Since(start).Seconds(),
			})
		}
		mFrameLatency.ObserveDuration(time.Since(start))
		gInflight.Add(-1)
		fsp.End()
	}
	res.aggregate()
	if clipErr != nil {
		return res, clipErr
	}
	return res, nil
}

// recordZonedFrame annotates a frame span with the zoned operating
// point (shared by fresh runs and replays).
func recordZonedFrame(fsp *obs.Span, fr FrameResult) {
	fsp.SetFloat("target_beta", fr.TargetBeta)
	fsp.SetFloat("applied_beta", fr.Beta)
	fsp.SetInt("range", fr.Range)
	fsp.SetFloat("saving_pct", fr.SavingPercent)
	fsp.SetFloat("zone_beta_spread", fr.ZoneBetaSpread)
}
