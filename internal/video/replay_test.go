package video

import (
	"testing"

	"hebs/internal/core"
	"hebs/internal/lcd"
)

func TestReplayEnergySavesPower(t *testing.T) {
	seq, err := Pan(base(t), 48, 48, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Process(seq, Policy{
		Options: core.Options{MaxDistortionPercent: 10, ExactSearch: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	dimmed, full, err := ReplayEnergy(seq, res, lcd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dimmed <= 0 || full <= 0 {
		t.Fatalf("non-positive energies: %v / %v", dimmed, full)
	}
	if dimmed >= full {
		t.Errorf("dimmed energy %v not below full %v", dimmed, full)
	}
	saving := 1 - dimmed/full
	if saving < 0.2 {
		t.Errorf("replay saving only %.1f%%", saving*100)
	}
}

func TestReplayEnergyValidation(t *testing.T) {
	seq, err := Pan(base(t), 48, 48, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayEnergy(nil, &Result{}, lcd.DefaultConfig()); err == nil {
		t.Error("nil clip should error")
	}
	if _, _, err := ReplayEnergy(seq, nil, lcd.DefaultConfig()); err == nil {
		t.Error("nil result should error")
	}
	short := &Result{Frames: make([]FrameResult, 1)}
	if _, _, err := ReplayEnergy(seq, short, lcd.DefaultConfig()); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestReplayEnergyMatchesPolicySavingDirection(t *testing.T) {
	// A looser budget must not consume more replay energy.
	seq, err := Pan(base(t), 48, 48, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Process(seq, Policy{Options: core.Options{MaxDistortionPercent: 3, ExactSearch: true}})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Process(seq, Policy{Options: core.Options{MaxDistortionPercent: 25, ExactSearch: true}})
	if err != nil {
		t.Fatal(err)
	}
	eTight, _, err := ReplayEnergy(seq, tight, lcd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eLoose, _, err := ReplayEnergy(seq, loose, lcd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if eLoose > eTight+1e-9 {
		t.Errorf("loose budget used more energy: %v > %v", eLoose, eTight)
	}
}
