// Scene-change detection. The temporal policy's CutThreshold operates
// on β jumps, which conflates scene cuts with mere exposure drift; the
// detector here works directly on histogram statistics — the same
// signal the backlight controller already computes — so cuts can be
// identified before the policy decides how fast to move β.
package video

import (
	"context"
	"errors"
	"fmt"

	"hebs/internal/core"
	"hebs/internal/histogram"
	"hebs/internal/invariant"
	"hebs/internal/obs"
)

// DefaultCutDistance is the earth-mover's distance (in grayscale
// levels, on normalized histograms) above which consecutive frames are
// treated as a scene cut. Typical exposure drift moves the histogram a
// few levels per frame; cuts move it tens of levels.
const DefaultCutDistance = 20.0

// DetectCuts returns the indices of frames that start a new scene: the
// histogram EMA of the running scene is compared against each new
// frame's histogram, and an earth-mover's distance above threshold
// marks a cut (the estimator then restarts on the new scene).
// threshold <= 0 selects DefaultCutDistance. Frame 0 never counts.
func DetectCuts(seq *Sequence, threshold float64) ([]int, error) {
	if seq == nil || len(seq.Frames) == 0 {
		return nil, errors.New("video: empty sequence")
	}
	if threshold <= 0 {
		threshold = DefaultCutDistance
	}
	sp := obs.StartSpan("video.DetectCuts")
	defer sp.End()
	sp.SetInt("frames", len(seq.Frames))
	// A fairly fast EMA keeps the reference current within a scene.
	est, err := histogram.NewEstimator(0.4)
	if err != nil {
		return nil, err
	}
	var cuts []int
	for i, f := range seq.Frames {
		h := histogram.Of(f)
		if i == 0 {
			if err := est.Observe(h); err != nil {
				return nil, err
			}
			continue
		}
		d, err := est.Distance(h)
		if err != nil {
			return nil, err
		}
		if d > threshold {
			cuts = append(cuts, i)
			// Restart the scene reference.
			est, err = histogram.NewEstimator(0.4)
			if err != nil {
				return nil, err
			}
		}
		if err := est.Observe(h); err != nil {
			return nil, err
		}
	}
	sp.SetInt("cuts", len(cuts))
	mCutsFound.Add(int64(len(cuts)))
	if invariant.Enabled {
		// Frame 0 never counts as a cut and indices must be a strictly
		// increasing subset of the frame range.
		for i, c := range cuts {
			invariant.Assert(c >= 1 && c < len(seq.Frames),
				"video: cut index %d outside [1,%d)", c, len(seq.Frames))
			invariant.Assert(i == 0 || c > cuts[i-1],
				"video: cut indices not increasing: %v", cuts)
		}
	}
	return cuts, nil
}

// DefaultCutTileRatio is the fraction of changed tiles above which
// DetectCutsByTiles marks a scene cut. A hard cut replaces essentially
// the whole screen (ratio ≈ 1); overlay/UI updates and talking-head
// motion touch a small fraction.
const DefaultCutTileRatio = 0.75

// DetectCutsByTiles detects scene starts from the tile-change ratio of
// the incremental delta analysis: a frame whose fraction of changed
// tiles (checksum mismatches against the previous frame) reaches the
// threshold starts a new scene. The signal is a byproduct of the
// DeltaAnalysis bookkeeping — per-tile hashing, no histogram distance —
// so it is essentially free on clips already running delta analysis,
// but it is cruder than DetectCuts: any full-screen motion (a pan, a
// fade) changes every tile, so it suits static/overlay content rather
// than continuous motion. tileSize 0 selects the delta default;
// threshold <= 0 selects DefaultCutTileRatio. Frame 0 never counts.
func DetectCutsByTiles(seq *Sequence, tileSize int, threshold float64) ([]int, error) {
	if seq == nil || len(seq.Frames) == 0 {
		return nil, errors.New("video: empty sequence")
	}
	if threshold <= 0 {
		threshold = DefaultCutTileRatio
	}
	sp := obs.StartSpan("video.DetectCutsByTiles")
	defer sp.End()
	sp.SetInt("frames", len(seq.Frames))
	fd, err := histogram.NewFrameDelta(seq.Frames[0].W, seq.Frames[0].H, tileSize)
	if err != nil {
		return nil, err
	}
	var cuts []int
	for i, f := range seq.Frames {
		changed, total, err := fd.Update(f, nil)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			continue // the first frame primes the reference
		}
		if float64(changed)/float64(total) >= threshold {
			cuts = append(cuts, i)
		}
	}
	sp.SetInt("cuts", len(cuts))
	mCutsFound.Add(int64(len(cuts)))
	if invariant.Enabled {
		for i, c := range cuts {
			invariant.Assert(c >= 1 && c < len(seq.Frames),
				"video: cut index %d outside [1,%d)", c, len(seq.Frames))
			invariant.Assert(i == 0 || c > cuts[i-1],
				"video: cut indices not increasing: %v", cuts)
		}
	}
	return cuts, nil
}

// ProcessWithCutDetection runs Process with the slew-rate policy, but
// snaps β at detected scene cuts instead of relying on a β-jump
// threshold: histogram-level cut detection fires even when the cut
// happens to land on a similar β (where the β-threshold would not).
// cutDistance <= 0 selects DefaultCutDistance.
func ProcessWithCutDetection(seq *Sequence, pol Policy, cutDistance float64) (*Result, error) {
	return ProcessWithCutDetectionContext(context.Background(), seq, pol, cutDistance)
}

// ProcessWithCutDetectionContext is ProcessWithCutDetection with
// cooperative cancellation: a cancellation mid-clip returns the frames
// of the scenes completed (plus the cancelled scene's completed
// prefix), aggregated, together with ctx's error. All scenes share one
// engine so frame buffers and cached plans carry across cuts.
func ProcessWithCutDetectionContext(ctx context.Context, seq *Sequence, pol Policy, cutDistance float64) (*Result, error) {
	if seq == nil || len(seq.Frames) == 0 {
		return nil, errors.New("video: empty sequence")
	}
	cuts, err := DetectCuts(seq, cutDistance)
	if err != nil {
		return nil, err
	}
	isCut := make(map[int]bool, len(cuts))
	for _, c := range cuts {
		isCut[c] = true
	}
	// Process scene by scene: within a scene the slew policy applies
	// with no β-threshold; at each cut the policy restarts (immediate
	// snap to the new scene's target).
	scenePol := pol
	scenePol.CutThreshold = 0
	if scenePol.Engine == nil {
		scenePol.Engine = core.NewEngine(core.EngineOptions{})
	}
	res := &Result{}
	start := 0
	var clipErr error
	flush := func(end int) error {
		if end <= start {
			return nil
		}
		sub, err := NewSequence(seq.Frames[start:end])
		if err != nil {
			return err
		}
		scenePol.frameOffset = start
		r, err := ProcessContext(ctx, sub, scenePol)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) && r != nil {
				res.Frames = append(res.Frames, r.Frames...)
				clipErr = cerr
				return nil
			}
			return fmt.Errorf("video: scene at frame %d: %w", start, err)
		}
		res.Frames = append(res.Frames, r.Frames...)
		return nil
	}
	for i := range seq.Frames {
		if clipErr != nil {
			break
		}
		if i > 0 && isCut[i] {
			if err := flush(i); err != nil {
				return nil, err
			}
			start = i
		}
	}
	if clipErr == nil {
		if err := flush(len(seq.Frames)); err != nil {
			return nil, err
		}
	}
	// Aggregate like Process (over the completed prefix if cancelled).
	var sumSave, sumDelta, maxDelta float64
	for i, f := range res.Frames {
		sumSave += f.SavingPercent
		if i > 0 {
			d := f.Beta - res.Frames[i-1].Beta
			if d < 0 {
				d = -d
			}
			sumDelta += d
			if d > maxDelta {
				maxDelta = d
			}
		}
	}
	if len(res.Frames) > 0 {
		res.MeanSaving = sumSave / float64(len(res.Frames))
	}
	if len(res.Frames) > 1 {
		res.MeanAbsDeltaBeta = sumDelta / float64(len(res.Frames)-1)
	}
	res.MaxAbsDeltaBeta = maxDelta
	if clipErr != nil {
		return res, clipErr
	}
	return res, nil
}
