package video

import (
	"testing"

	"hebs/internal/core"
	"hebs/internal/gray"
	"hebs/internal/transform"
)

// fuzzFrameSide keeps frames large enough for the UQI sliding window
// yet cheap to equalize.
const fuzzFrameSide = 16

// FuzzDetectCuts builds short random sequences and checks that cut
// detection never panics and only reports valid, strictly increasing
// cut indices, then runs the slew-rate policy over the same frames and
// checks every applied backlight factor is admissible (β ∈ (0,1]).
func FuzzDetectCuts(f *testing.F) {
	f.Add([]byte{0, 128, 255, 3}, uint8(3), uint8(200), uint8(20))
	f.Add([]byte{}, uint8(0), uint8(0), uint8(0))
	f.Add([]byte{255, 255, 0, 0, 17}, uint8(2), uint8(120), uint8(255))
	f.Fuzz(func(t *testing.T, pix []byte, nf8, r8, step8 uint8) {
		nf := 2 + int(nf8)%3 // [2,4] frames
		frames := make([]*gray.Image, nf)
		perFrame := fuzzFrameSide * fuzzFrameSide
		for k := range frames {
			img := gray.New(fuzzFrameSide, fuzzFrameSide)
			for p := range img.Pix {
				if len(pix) > 0 {
					img.Pix[p] = pix[(k*perFrame+p)%len(pix)]
				} else {
					img.Pix[p] = uint8(k*37 + p)
				}
			}
			frames[k] = img
		}
		seq, err := NewSequence(frames)
		if err != nil {
			t.Fatalf("NewSequence: %v", err)
		}
		cuts, err := DetectCuts(seq, float64(step8))
		if err != nil {
			t.Fatalf("DetectCuts: %v", err)
		}
		for i, c := range cuts {
			if c < 1 || c >= nf {
				t.Fatalf("cut index %d outside [1,%d)", c, nf)
			}
			if i > 0 && c <= cuts[i-1] {
				t.Fatalf("cut indices not increasing: %v", cuts)
			}
		}
		pol := Policy{
			MaxStep: float64(1+int(step8)) / 255,
			Options: core.Options{DynamicRange: 1 + int(r8)%(transform.Levels-1)},
		}
		res, err := Process(seq, pol)
		if err != nil {
			t.Fatalf("Process: %v", err)
		}
		for i, fr := range res.Frames {
			if !(fr.Beta > 0 && fr.Beta <= 1) {
				t.Fatalf("frame %d: applied β = %v outside (0,1]", i, fr.Beta)
			}
			if !(fr.TargetBeta > 0 && fr.TargetBeta <= 1) {
				t.Fatalf("frame %d: target β = %v outside (0,1]", i, fr.TargetBeta)
			}
		}
	})
}
