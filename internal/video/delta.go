// Pooled incremental-analysis state for the schedulers. A deltaState
// bundles the tile checksum/histogram reference (histogram.FrameDelta)
// with the two memoizations the fused fast path replays when a frame's
// pixels are unchanged:
//
//   - ownRange: the frame's own admissible range — skipping the exact
//     range search, the most expensive per-frame stage.
//   - meas: the applied-range measurement record (β, distortion, power
//     saving) — skipping the distortion/power traversals.
//
// Both replays are exact: range search and measurement are pure
// functions of (pixels, options), the checksums certify the pixels,
// and the options are fingerprinted below. Tile state itself is a pure
// function of pixels and carries across clips unconditionally; the
// memoizations are dropped whenever the fingerprint moves (or an
// uncomparable option like a custom Metric func is in play).
package video

import (
	"sync"

	"hebs/internal/chart"
	"hebs/internal/core"
	"hebs/internal/driver"
	"hebs/internal/histogram"
	"hebs/internal/power"
)

// deltaMeas is one frame's applied-range measurement record.
type deltaMeas struct {
	rng                      int
	beta, distortion, saving float64
	valid                    bool
}

// deltaOptKey fingerprints the core.Options fields that influence
// per-frame range selection and measurement. Trace is excluded (pure
// observability); Metric cannot be compared (func type), so a non-nil
// Metric invalidates cross-clip memoization instead.
type deltaOptKey struct {
	maxDist    float64
	dynRange   int
	exact      bool
	worstCase  bool
	curve      *chart.Curve
	segments   int
	clipFactor float64
	eq         core.Equalizer
	drv        *driver.Config
	sub        *power.Subsystem
}

// deltaKeyFor builds the fingerprint; comparable reports whether the
// options admit cross-clip memoization at all.
func deltaKeyFor(opts core.Options) (key deltaOptKey, comparable bool) {
	return deltaOptKey{
		maxDist:    opts.MaxDistortionPercent,
		dynRange:   opts.DynamicRange,
		exact:      opts.ExactSearch,
		worstCase:  opts.WorstCase,
		curve:      opts.Curve,
		segments:   opts.Segments,
		clipFactor: opts.ClipFactor,
		eq:         opts.Equalizer,
		drv:        opts.Driver,
		sub:        opts.Subsystem,
	}, opts.Metric == nil
}

// deltaState is the pooled per-walk incremental-analysis state.
type deltaState struct {
	delta    *histogram.FrameDelta
	ownRange int
	ownValid bool
	meas     deltaMeas
	key      deltaOptKey
	keyOK    bool
}

var deltaStatePool = sync.Pool{New: func() any { return new(deltaState) }}

// acquireDelta draws pooled state shaped for w×h frames at tileSize
// (0 = histogram.DefaultTileSize). Tile state survives pool round
// trips whenever the geometry matches — a clip starting where the
// previous one left off re-bins nothing. The range/measurement
// memoizations additionally require an identical options fingerprint.
func acquireDelta(w, h, tileSize int, opts core.Options) (*deltaState, error) {
	ds := deltaStatePool.Get().(*deltaState)
	if ds.delta == nil {
		var err error
		ds.delta, err = histogram.NewFrameDelta(w, h, tileSize)
		if err != nil {
			deltaStatePool.Put(ds)
			return nil, err
		}
	} else if !ds.delta.Matches(w, h, tileSize) {
		if err := ds.delta.Configure(w, h, tileSize); err != nil {
			deltaStatePool.Put(ds)
			return nil, err
		}
		ds.ownValid = false
		ds.meas = deltaMeas{}
	}
	key, comparable := deltaKeyFor(opts)
	if !comparable || !ds.keyOK || key != ds.key {
		ds.ownValid = false
		ds.meas = deltaMeas{}
	}
	ds.key, ds.keyOK = key, comparable
	return ds, nil
}

// releaseDelta returns the state to the pool.
func releaseDelta(ds *deltaState) {
	if ds != nil {
		deltaStatePool.Put(ds)
	}
}
