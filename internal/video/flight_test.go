package video

import (
	"sort"
	"testing"

	"hebs/internal/core"
	"hebs/internal/obs"
)

// TestProcessFeedsFlightRecorder: both scheduler modes feed one record
// per frame into an installed flight recorder, with the governor's
// decisions mirrored in the record fields.
func TestProcessFeedsFlightRecorder(t *testing.T) {
	seq := pipelineFixtures(t)["mixed"]
	pol := Policy{
		MaxStep:        0.01,
		CutThreshold:   0.15,
		ReuseThreshold: 4,
		Options:        core.Options{MaxDistortionPercent: 10, ExactSearch: true},
	}
	for _, workers := range []int{1, 4} {
		rec := obs.NewFlightRecorder(len(seq.Frames) + 8)
		prev := obs.SetFlightRecorder(rec)
		ppol := pol
		ppol.Workers = workers
		res, err := Process(seq, ppol)
		obs.SetFlightRecorder(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		recs := rec.Snapshot()
		if len(recs) != len(seq.Frames) {
			t.Fatalf("workers=%d: %d flight records, want %d", workers, len(recs), len(seq.Frames))
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].Frame < recs[j].Frame })
		for i, fr := range recs {
			if fr.Frame != i {
				t.Fatalf("workers=%d: frame indices not a permutation of 0..n-1: %d at %d", workers, fr.Frame, i)
			}
			got := res.Frames[i]
			if fr.Beta != got.Beta || fr.Range != got.Range {
				t.Errorf("workers=%d frame %d: record (β=%v r=%d) disagrees with result (β=%v r=%d)",
					workers, i, fr.Beta, fr.Range, got.Beta, got.Range)
			}
			if fr.TargetBeta <= 0 || fr.TargetBeta > 1 {
				t.Errorf("workers=%d frame %d: target β %v out of (0,1]", workers, i, fr.TargetBeta)
			}
			if fr.Seconds < 0 {
				t.Errorf("workers=%d frame %d: negative wall time %v", workers, i, fr.Seconds)
			}
			if fr.HistHash == 0 {
				t.Errorf("workers=%d frame %d: no histogram hash despite ReuseThreshold>0", workers, i)
			}
			if workers == 1 && fr.Workers != 1 {
				t.Errorf("serial frame %d: Workers = %d", i, fr.Workers)
			}
			if workers > 1 && fr.Workers < 2 {
				t.Errorf("workers=%d frame %d: Workers = %d", workers, i, fr.Workers)
			}
		}
		// The governor flags must appear where the result says they
		// happened — the static prefix reuses, the cut index snaps.
		cutSnaps := 0
		for _, fr := range recs {
			if fr.CutSnap {
				cutSnaps++
			}
		}
		if cutSnaps == 0 {
			t.Errorf("workers=%d: no cut_snap records on the mixed clip", workers)
		}
	}
}

// TestProcessNoRecorderNoRecords: with recording disabled the pipeline
// must not fabricate a recorder (the nil-sink discipline).
func TestProcessNoRecorderNoRecords(t *testing.T) {
	prev := obs.SetFlightRecorder(nil)
	defer obs.SetFlightRecorder(prev)
	seq := pipelineFixtures(t)["pan"]
	if _, err := Process(seq, Policy{Options: core.Options{MaxDistortionPercent: 10}}); err != nil {
		t.Fatal(err)
	}
	if obs.Flight() != nil {
		t.Error("Process installed a flight recorder on its own")
	}
}
