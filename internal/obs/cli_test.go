package obs

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLIFlagsArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCLIFlags(fs)
	if err := fs.Parse([]string{
		"-trace-out", tracePath, "-metrics-out", metricsPath,
		"-cpuprofile", cpuPath, "-memprofile", memPath,
	}); err != nil {
		t.Fatal(err)
	}
	if !c.TracingRequested() {
		t.Error("TracingRequested false with -trace-out set")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if !TracingEnabled() {
		t.Error("Start did not install a span sink")
	}
	sp := StartSpan("work")
	sp.Child("inner").End()
	sp.End()
	NewCounter("cli_test.ran").Inc()
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if TracingEnabled() {
		t.Error("Stop did not restore the nil sink")
	}

	var spans []SpanData
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatalf("trace dump unreadable: %v", err)
	}
	if len(spans) != 2 {
		t.Errorf("trace has %d spans, want 2", len(spans))
	}
	var snap Snapshot
	data, err = os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics dump unreadable: %v", err)
	}
	if snap.Counters["cli_test.ran"] < 1 {
		t.Errorf("metrics snapshot missing counter: %v", snap.Counters)
	}
	for _, p := range []string{cpuPath, memPath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestCLIFlagsStopWithoutStart(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCLIFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil {
		t.Errorf("Stop on un-started handle: %v", err)
	}
}

// TestCLIFlagsTelemetryLifecycle runs the full -telemetry wiring: the
// server answers while started, the tracker carries the default
// metrics plus the -slo budget, the flight recorder is installed
// globally, and Stop dumps -flight-out and tears everything down.
func TestCLIFlagsTelemetryLifecycle(t *testing.T) {
	dir := t.TempDir()
	flightPath := filepath.Join(dir, "flight.json")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCLIFlags(fs)
	if err := fs.Parse([]string{
		"-telemetry", "127.0.0.1:0",
		"-slo", "video.frame.seconds:p99<100ms",
		"-flight-out", flightPath,
		"-flight-size", "4",
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	srv := c.Telemetry()
	if srv == nil {
		t.Fatal("Telemetry() nil after Start with -telemetry")
	}
	if Flight() != c.Flight() || c.Flight() == nil {
		t.Fatal("Start did not install the flight recorder globally")
	}
	if c.Flight().Size() != 4 {
		t.Errorf("-flight-size ignored: ring size %d", c.Flight().Size())
	}
	budgets := c.SLO().Budgets()
	if len(budgets) != 1 || budgets[0].Metric != "video.frame.seconds" || budgets[0].Quantile != 0.99 {
		t.Errorf("budgets = %+v", budgets)
	}

	// Feed the pipeline-side instruments the way a run would.
	Default().Histogram("video.frame.seconds", LatencyBuckets()).Observe(0.005)
	Flight().Record(FrameRecord{Frame: 0, Beta: 0.5, Workers: 1, Seconds: 0.005})

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatalf("scrape while running: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "video_frame_seconds_count") {
		t.Errorf("/metrics: %d\n%s", resp.StatusCode, body)
	}
	resp, err = http.Get(srv.URL() + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var rep SLOReport
	if jerr := json.NewDecoder(resp.Body).Decode(&rep); jerr != nil {
		t.Fatalf("/debug/slo: %v", jerr)
	}
	resp.Body.Close()
	if len(rep.Stages) != len(DefaultSLOMetrics) {
		t.Errorf("/debug/slo tracks %d stages, want %d", len(rep.Stages), len(DefaultSLOMetrics))
	}

	url := srv.URL()
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if c.Telemetry() != nil || c.SLO() != nil || c.Flight() != nil {
		t.Error("Stop did not clear the telemetry handles")
	}
	if Flight() != nil {
		t.Error("Stop did not restore the previous (nil) flight recorder")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still answering after Stop")
	}
	data, err := os.ReadFile(flightPath)
	if err != nil {
		t.Fatalf("-flight-out not written: %v", err)
	}
	var recs []FrameRecord
	if err := json.Unmarshal(data, &recs); err != nil || len(recs) != 1 || recs[0].Frame != 0 {
		t.Errorf("-flight-out contents: %v %+v", err, recs)
	}
}

// TestCLIFlagsFlightOutWithoutTelemetry proves -flight-out alone turns
// recording on (no server required).
func TestCLIFlagsFlightOutWithoutTelemetry(t *testing.T) {
	flightPath := filepath.Join(t.TempDir(), "flight.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCLIFlags(fs)
	if err := fs.Parse([]string{"-flight-out", flightPath}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if c.Telemetry() != nil {
		t.Error("server started without -telemetry")
	}
	if Flight() == nil {
		t.Fatal("recorder not installed by -flight-out")
	}
	Flight().Record(FrameRecord{Frame: 42, Workers: 1})
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(flightPath)
	if err != nil {
		t.Fatal(err)
	}
	var recs []FrameRecord
	if err := json.Unmarshal(data, &recs); err != nil || len(recs) != 1 || recs[0].Frame != 42 {
		t.Errorf("flight dump: %v %+v", err, recs)
	}
}

func TestCLIFlagsBadSLOSpec(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCLIFlags(fs)
	if err := fs.Parse([]string{"-telemetry", "127.0.0.1:0", "-slo", "not-a-spec"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		_ = c.Stop() //nolint — teardown of the unexpected success
		t.Fatal("Start accepted a malformed -slo spec")
	}
	// The failed Start must still release the flight recorder on Stop.
	if err := c.Stop(); err != nil {
		t.Errorf("Stop after failed Start: %v", err)
	}
	if Flight() != nil {
		t.Error("flight recorder leaked after failed Start")
	}
}

func TestCLIFlagsCollectorWithoutTraceOut(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCLIFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	col := c.Collector() // timeline path: force collection sans -trace-out
	StartSpan("x").End()
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if len(col.Spans()) != 1 {
		t.Errorf("collector captured %d spans, want 1", len(col.Spans()))
	}
}
