package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestCLIFlagsArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCLIFlags(fs)
	if err := fs.Parse([]string{
		"-trace-out", tracePath, "-metrics-out", metricsPath,
		"-cpuprofile", cpuPath, "-memprofile", memPath,
	}); err != nil {
		t.Fatal(err)
	}
	if !c.TracingRequested() {
		t.Error("TracingRequested false with -trace-out set")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if !TracingEnabled() {
		t.Error("Start did not install a span sink")
	}
	sp := StartSpan("work")
	sp.Child("inner").End()
	sp.End()
	NewCounter("cli_test.ran").Inc()
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if TracingEnabled() {
		t.Error("Stop did not restore the nil sink")
	}

	var spans []SpanData
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatalf("trace dump unreadable: %v", err)
	}
	if len(spans) != 2 {
		t.Errorf("trace has %d spans, want 2", len(spans))
	}
	var snap Snapshot
	data, err = os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics dump unreadable: %v", err)
	}
	if snap.Counters["cli_test.ran"] < 1 {
		t.Errorf("metrics snapshot missing counter: %v", snap.Counters)
	}
	for _, p := range []string{cpuPath, memPath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestCLIFlagsStopWithoutStart(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCLIFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil {
		t.Errorf("Stop on un-started handle: %v", err)
	}
}

func TestCLIFlagsCollectorWithoutTraceOut(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCLIFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	col := c.Collector() // timeline path: force collection sans -trace-out
	StartSpan("x").End()
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if len(col.Spans()) != 1 {
		t.Errorf("collector captured %d spans, want 1", len(col.Spans()))
	}
}
