package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"hebs/internal/noalloc"
)

// noallocSuspects renders this package's //hebs:noalloc inventory in
// the `hebsvet -list` format, so an alloc-guard failure names the
// annotated functions to re-check (run `go run ./cmd/hebsvet -v` for
// the exact escaping expression) instead of reporting a bare count.
func noallocSuspects(t *testing.T) string {
	t.Helper()
	inv, err := noalloc.ScanDir("../..", ".")
	if err != nil {
		return "(noalloc inventory unavailable: " + err.Error() + ")"
	}
	var sb strings.Builder
	inv.WriteList(&sb)
	return sb.String()
}

// TestFlightRecorderWraparound drives more records than the ring holds
// and checks the snapshot retains exactly the newest `size` records,
// oldest first.
func TestFlightRecorderWraparound(t *testing.T) {
	for _, size := range []int{1, 4, 7} {
		f := NewFlightRecorder(size)
		if f.Size() != size {
			t.Fatalf("Size = %d, want %d", f.Size(), size)
		}
		const total = 23
		for i := 0; i < total; i++ {
			f.Record(FrameRecord{Frame: i, Beta: float64(i) / total})
		}
		if got := f.Recorded(); got != total {
			t.Errorf("size %d: Recorded = %d, want %d", size, got, total)
		}
		recs := f.Snapshot()
		if len(recs) != size {
			t.Fatalf("size %d: snapshot holds %d records, want %d", size, len(recs), size)
		}
		for k, rec := range recs {
			if want := total - size + k; rec.Frame != want {
				t.Errorf("size %d: snapshot[%d].Frame = %d, want %d (oldest first)", size, k, rec.Frame, want)
			}
		}
	}
}

func TestFlightRecorderPartial(t *testing.T) {
	f := NewFlightRecorder(8)
	if recs := f.Snapshot(); len(recs) != 0 {
		t.Fatalf("empty recorder snapshot holds %d records", len(recs))
	}
	f.Record(FrameRecord{Frame: 0})
	f.Record(FrameRecord{Frame: 1})
	recs := f.Snapshot()
	if len(recs) != 2 || recs[0].Frame != 0 || recs[1].Frame != 1 {
		t.Errorf("partial snapshot = %+v", recs)
	}
}

// TestFlightRecorderConcurrent interleaves Record and Snapshot across
// goroutines; under -race this proves the ring is race-clean, and every
// snapshot must hold only intact records (Frame encodes the writer and
// sequence, so a torn record would show an impossible pair).
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32)
	const writers, per = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n := g*per + i
				f.Record(FrameRecord{Frame: n, Beta: float64(n)})
			}
		}(g)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, rec := range f.Snapshot() {
					if rec.Beta != float64(rec.Frame) {
						t.Errorf("torn record: frame %d beta %v", rec.Frame, rec.Beta)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := f.Recorded(); got != writers*per {
		t.Errorf("Recorded = %d, want %d", got, writers*per)
	}
}

func TestFlightRecorderWriteJSON(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(FrameRecord{Frame: 7, TargetBeta: 0.4, Beta: 0.5, Range: 224, PlanCached: true, Workers: 3, Seconds: 0.002})
	var sb strings.Builder
	if err := f.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var recs []FrameRecord
	if err := json.Unmarshal([]byte(sb.String()), &recs); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v\n%s", err, sb.String())
	}
	if len(recs) != 1 || recs[0] != (FrameRecord{Frame: 7, TargetBeta: 0.4, Beta: 0.5, Range: 224, PlanCached: true, Workers: 3, Seconds: 0.002}) {
		t.Errorf("round-trip = %+v", recs)
	}
	for _, key := range []string{`"frame"`, `"target_beta"`, `"beta"`, `"range"`, `"plan_cached"`, `"workers"`, `"seconds"`} {
		if !strings.Contains(sb.String(), key) {
			t.Errorf("JSON output missing %s:\n%s", key, sb.String())
		}
	}
	// Zero-valued flags are omitted so dumps stay scannable.
	if strings.Contains(sb.String(), "cut_snap") {
		t.Errorf("zero cut_snap flag serialized:\n%s", sb.String())
	}
}

// TestDisabledTelemetryOverheadGuard is bench-guard's counterpart to
// TestNilSinkOverheadGuard for the flags this PR added to the frame hot
// path: with no flight recorder installed and no SLO window attached, a
// frame's worth of telemetry sites (one Flight() nil check, one
// histogram Observe carrying the window nil check) must stay
// allocation-free and within noise.
func TestDisabledTelemetryOverheadGuard(t *testing.T) {
	prev := SetFlightRecorder(nil)
	defer SetFlightRecorder(prev)
	h := NewRegistry().Histogram("guard.frame.seconds", LatencyBuckets())
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rec := Flight(); rec != nil {
				rec.Record(FrameRecord{Frame: i})
			}
			h.Observe(0.001)
		}
	})
	if perOp := res.NsPerOp(); perOp > 2000 {
		t.Errorf("disabled-path telemetry overhead %d ns per frame-worth of sites; want <= 2000", perOp)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Errorf("disabled-path telemetry allocates %d objects/op; want 0\n"+
			"the disabled path runs these //hebs:noalloc functions — re-check with `go run ./cmd/hebsvet -v`:\n%s",
			allocs, noallocSuspects(t))
	}
}

func TestGlobalFlightRecorder(t *testing.T) {
	prev := SetFlightRecorder(nil)
	defer SetFlightRecorder(prev)
	if Flight() != nil {
		t.Fatal("recorder enabled after SetFlightRecorder(nil)")
	}
	f := NewFlightRecorder(2)
	if got := SetFlightRecorder(f); got != nil {
		t.Errorf("previous recorder = %v, want nil", got)
	}
	if Flight() != f {
		t.Error("Flight() did not return the installed recorder")
	}
	if got := SetFlightRecorder(prev); got != f {
		t.Errorf("swap returned %v, want the installed recorder", got)
	}
}
