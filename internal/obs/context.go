// Context propagation for spans: the engine refactor threads a
// context.Context end-to-end through the pipeline, and the current
// span rides along in it so any layer can attach children without an
// explicit *Span parameter. With tracing disabled every helper here is
// a no-op that returns the context unchanged, so the hot path pays no
// context.WithValue allocation.
package obs

import "context"

// spanCtxKey is the private context key for the current span.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp. A nil span returns
// ctx unchanged (no allocation on the tracing-disabled path).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil when none
// (a nil *Span is valid: all its methods are no-ops).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpanCtx opens a span as a child of the span carried by ctx (a
// root span when ctx carries none) and returns it together with a
// derived context carrying the new span. When tracing is disabled the
// returned span is nil and ctx is returned unchanged.
func StartSpanCtx(ctx context.Context, name string) (*Span, context.Context) {
	sp := SpanFromContext(ctx).Child(name)
	if sp == nil {
		return nil, ctx
	}
	return sp, ContextWithSpan(ctx, sp)
}
