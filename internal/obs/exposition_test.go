package obs

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"video.frame.seconds":    "video_frame_seconds",
		"core.stage.plc.seconds": "core_stage_plc_seconds",
		"already_fine_total":     "already_fine_total",
		"9starts.with.digit":     "_9starts_with_digit",
		"bad-chars space%":       "bad_chars_space_",
		"":                       "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// goldenRegistry builds the fixed registry the golden file pins.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("core.frames_total").Add(3)
	r.Counter("video.cut_snaps_total") // zero-valued counters still export
	r.Gauge("core.last_beta").Set(0.5)
	r.Gauge("video.last_mean_saving_pct").Set(27.25)
	h := r.Histogram("video.frame.seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.02)
	h.Observe(5) // above the top bound: only the +Inf bucket catches it
	return r
}

// TestWritePrometheusGolden pins the exposition bytes against the
// checked-in golden file. Regenerate with UPDATE_GOLDEN=1 go test
// -run TestWritePrometheusGolden ./internal/obs after a deliberate
// format change.
func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("Prometheus exposition drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusParses validates the live default-registry output
// line by line against the exposition grammar the smoke job relies on:
// every non-comment line is `name[{le="..."}] value`, histogram series
// are cumulative and end in a +Inf bucket matching _count.
func TestWritePrometheusParses(t *testing.T) {
	NewCounter("obs_test.exposition_probe_total").Inc()
	NewHistogram("obs_test.exposition_probe.seconds", LatencyBuckets()).Observe(0.002)
	var sb strings.Builder
	if err := Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty exposition")
	}
	types := map[string]string{}
	var cum = map[string]int64{}
	var lastLE = map[string]float64{}
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# TYPE ") {
			f := strings.Fields(ln)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", ln)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(ln, "#") {
			continue
		}
		sp := strings.LastIndexByte(ln, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", ln)
		}
		series, val := ln[:sp], ln[sp+1:]
		if _, err := strconv.ParseFloat(strings.TrimPrefix(val, "+"), 64); err != nil {
			t.Fatalf("line %q: value %q does not parse: %v", ln, val, err)
		}
		name := series
		var le string
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			label := series[i:]
			if !strings.HasPrefix(label, `{le="`) || !strings.HasSuffix(label, `"}`) {
				t.Fatalf("line %q: unexpected label set %q", ln, label)
			}
			le = label[len(`{le="`) : len(label)-len(`"}`)]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && types[b] == "histogram" {
				base = b
			}
		}
		typ, ok := types[base]
		if !ok {
			t.Fatalf("line %q: sample without preceding TYPE", ln)
		}
		if typ != "histogram" && base != name {
			t.Fatalf("line %q: suffix on non-histogram", ln)
		}
		for _, c := range name {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
				t.Fatalf("line %q: invalid metric name char %q", ln, c)
			}
		}
		if strings.HasSuffix(name, "_bucket") {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", ln, err)
			}
			if n < cum[base] {
				t.Fatalf("bucket line %q: cumulative count decreased (%d < %d)", ln, n, cum[base])
			}
			cum[base] = n
			f := math.Inf(1)
			if le != "+Inf" {
				f, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bucket line %q: le %q: %v", ln, le, err)
				}
			}
			if prev, ok := lastLE[base]; ok && f <= prev {
				t.Fatalf("bucket line %q: le not increasing (%v <= %v)", ln, f, prev)
			}
			lastLE[base] = f
		}
		if strings.HasSuffix(name, "_count") {
			n, _ := strconv.ParseInt(val, 10, 64)
			if last := lastLE[base]; !math.IsInf(last, 1) {
				t.Errorf("histogram %s: last bucket le=%v, want +Inf", base, last)
			}
			if n != cum[base] {
				t.Errorf("histogram %s: _count %d != +Inf bucket %d", base, n, cum[base])
			}
		}
	}
	for _, probe := range []string{"obs_test_exposition_probe_total", "obs_test_exposition_probe_seconds"} {
		if _, ok := types[probe]; !ok {
			t.Errorf("probe metric %s missing from exposition", probe)
		}
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("demo.frames_total").Add(2)
	h := r.Histogram("demo.latency.seconds", []float64{0.01})
	h.Observe(0.005)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		panic(err)
	}
	fmt.Print(sb.String())
	// Output:
	// # TYPE demo_frames_total counter
	// demo_frames_total 2
	// # TYPE demo_latency_seconds histogram
	// demo_latency_seconds_bucket{le="0.01"} 1
	// demo_latency_seconds_bucket{le="+Inf"} 1
	// demo_latency_seconds_sum 0.005
	// demo_latency_seconds_count 1
}
