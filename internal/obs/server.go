// The telemetry server: a stdlib-HTTP surface over the registry, the
// SLO tracker and the flight recorder, mounted behind the -telemetry
// flag so a running pipeline can be watched live instead of post-
// mortem. Endpoints:
//
//	/metrics        Prometheus text exposition (v0.0.4)
//	/metrics.json   the -metrics-out JSON snapshot
//	/healthz        liveness ("ok")
//	/debug/slo      windowed quantiles + budget breaches (JSON)
//	/debug/frames   the flight recorder ring (JSON, oldest first)
//	/debug/pprof/*  the standard net/http/pprof handlers
//
// The server owns no instrument state: every handler renders a
// point-in-time view of the shared registry/tracker/recorder, so
// serving concurrently with a hot pipeline needs no coordination
// beyond the instruments' own atomics.
package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerOptions configures a telemetry Server.
type ServerOptions struct {
	// Registry backs /metrics and /metrics.json; nil selects Default().
	Registry *Registry
	// SLO backs /debug/slo; nil serves an empty report.
	SLO *SLOTracker
	// Flight backs /debug/frames; nil falls back to the process-wide
	// recorder (Flight()), which may itself be disabled — the endpoint
	// then serves an empty array.
	Flight *FlightRecorder
}

// Server serves the telemetry endpoints on one listener. Create with
// NewServer, bring up with Start, and stop with Shutdown (or cancel
// Start's context for the same graceful teardown).
type Server struct {
	opts ServerOptions
	addr string
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
	// serveErr records a non-Shutdown Serve failure (the listener died
	// underneath us); Shutdown reports it after the loop exits.
	serveErr error
}

// NewServer returns an unstarted server for addr (":0" binds an
// ephemeral port, reported by Addr after Start).
func NewServer(addr string, opts ServerOptions) *Server {
	if opts.Registry == nil {
		opts.Registry = Default()
	}
	s := &Server{opts: opts, addr: addr, done: make(chan struct{})}
	s.srv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s
}

// Handler returns the telemetry mux — exported so tests (and embedders
// that already own a listener) can serve it directly.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/slo", s.handleSLO)
	mux.HandleFunc("/debug/frames", s.handleFrames)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds the listener and serves in a background goroutine. When
// ctx is cancelled the server shuts down gracefully (in-flight
// requests get up to 5s to drain); pass context.Background() to manage
// teardown solely via Shutdown.
func (s *Server) Start(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("obs: telemetry listen %s: %w", s.addr, err)
	}
	s.ln = ln
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr = err
		}
	}()
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				_ = s.srv.Shutdown(sctx) //hebslint:allow errdrop best-effort teardown on context cancel
			case <-s.done:
			}
		}()
	}
	return nil
}

// Addr returns the bound listen address ("host:port"), valid after
// Start — the way to discover the ephemeral port behind ":0".
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.addr
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL, valid after Start.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Done is closed when the serve loop has exited.
func (s *Server) Done() <-chan struct{} { return s.done }

// Shutdown gracefully stops the server: the listener closes
// immediately, in-flight requests drain until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.ln == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	<-s.done
	if err != nil {
		return err
	}
	return s.serveErr
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	if err := s.opts.Registry.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is abort the stream.
		return
	}
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.opts.Registry.WriteJSON(w); err != nil {
		return
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleSLO(w http.ResponseWriter, req *http.Request) {
	rep := &SLOReport{Stages: []SLOStageReport{}}
	if s.opts.SLO != nil {
		rep = s.opts.SLO.Check()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return
	}
}

func (s *Server) handleFrames(w http.ResponseWriter, req *http.Request) {
	f := s.opts.Flight
	if f == nil {
		f = Flight()
	}
	w.Header().Set("Content-Type", "application/json")
	if f == nil {
		fmt.Fprintln(w, "[]")
		return
	}
	if err := f.WriteJSON(w); err != nil {
		return
	}
}
