package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("frames") != c {
		t.Error("re-registration did not return the same counter")
	}
	g := r.Gauge("beta")
	if g.Value() != 0 {
		t.Errorf("fresh gauge = %v, want 0", g.Value())
	}
	g.Set(0.59)
	if got := g.Value(); got != 0.59 {
		t.Errorf("gauge = %v, want 0.59", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	// Exactly-on-boundary values land in the bucket they bound
	// (inclusive upper edge), values above the top bound overflow.
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 4.0001, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	wantCounts := []int64{2, 2, 1} // (..1]: 0.5,1  (1..2]: 1.5,2  (2..4]: 4
	for i, w := range wantCounts {
		if s.Buckets[i].Count != w {
			t.Errorf("bucket le=%v count = %d, want %d", s.Buckets[i].LE, s.Buckets[i].Count, w)
		}
	}
	if s.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", s.Overflow)
	}
	wantSum := 0.5 + 1 + 1.5 + 2 + 4 + 4.0001 + 100
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	h.ObserveDuration(3 * time.Second)
	if got := h.Snapshot().Buckets[2].Count; got != 2 {
		t.Errorf("ObserveDuration(3s) landed wrong: bucket le=4 count %d, want 2", got)
	}
}

func TestBucketLayoutHelpers(t *testing.T) {
	lin := LinearBuckets(0, 32, 4)
	if want := []float64{32, 64, 96, 128}; !equalF(lin, want) {
		t.Errorf("LinearBuckets = %v, want %v", lin, want)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if want := []float64{1, 10, 100}; !equalF(exp, want) {
		t.Errorf("ExponentialBuckets = %v, want %v", exp, want)
	}
	lat := LatencyBuckets()
	if len(lat) != 20 || lat[0] != 10e-6 {
		t.Errorf("LatencyBuckets = %v", lat)
	}
	// The ladder must comfortably cover slow-path outliers (>= 1s) so
	// they resolve into real buckets instead of +Inf.
	if top := lat[len(lat)-1]; top < 1 {
		t.Errorf("LatencyBuckets top %v < 1s: outliers would crush into +Inf", top)
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] <= lat[i-1] {
			t.Fatalf("latency buckets not increasing at %d: %v", i, lat)
		}
	}
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

// TestRegistryConcurrent exercises every instrument type from many
// goroutines; run with -race this verifies the layer is data-race free
// and loses no updates.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(w))
				r.Histogram("h", LinearBuckets(0, 50, 4)).Observe(float64(i))
				if i%50 == 0 {
					_ = r.Snapshot() // snapshots race against writers
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Errorf("counter lost updates: %d, want %d", got, workers*per)
	}
	hs := r.Histogram("h", nil).Snapshot()
	if hs.Count != workers*per {
		t.Errorf("histogram count %d, want %d", hs.Count, workers*per)
	}
	var bucketTotal int64
	for _, b := range hs.Buckets {
		bucketTotal += b.Count
	}
	bucketTotal += hs.Overflow
	if bucketTotal != hs.Count {
		t.Errorf("bucket counts sum to %d, count is %d", bucketTotal, hs.Count)
	}
	wantSum := float64(workers) * float64(per*(per-1)) / 2
	if math.Abs(hs.Sum-wantSum) > 1e-6 {
		t.Errorf("histogram sum %v, want %v", hs.Sum, wantSum)
	}
}

// TestSnapshotGoldenJSON pins the -metrics-out JSON shape.
func TestSnapshotGoldenJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.frames_total").Add(3)
	r.Gauge("core.last_beta").Set(0.5)
	h := r.Histogram("core.stage.plc.seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(sb.String())
	golden := strings.TrimSpace(`
{
  "counters": {
    "core.frames_total": 3
  },
  "gauges": {
    "core.last_beta": 0.5
  },
  "histograms": {
    "core.stage.plc.seconds": {
      "count": 2,
      "sum": 0.5005,
      "buckets": [
        {
          "le": 0.001,
          "count": 1
        },
        {
          "le": 0.01,
          "count": 0
        }
      ],
      "overflow": 1
    }
  }
}`)
	if got != golden {
		t.Errorf("snapshot JSON drifted from golden shape.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	PublishExpvar()
	PublishExpvar() // second call must not panic on duplicate name
	NewCounter("obs_test.published").Inc()
	s := Default().Snapshot()
	if s.Counters["obs_test.published"] < 1 {
		t.Error("default registry snapshot missing published counter")
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("default snapshot not JSON-serializable: %v", err)
	}
}
