package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func startTestServer(t *testing.T, opts ServerOptions) (*Server, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	s := NewServer("127.0.0.1:0", opts)
	if err := s.Start(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cancel()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := s.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, cancel
}

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t.frames_total").Add(5)
	h := reg.Histogram("t.frame.seconds", LatencyBuckets())
	tr := NewSLOTracker(reg, 32)
	if err := tr.SetBudget(SLOBudget{Metric: "t.frame.seconds", Quantile: 0.99, Budget: 0.033}); err != nil {
		t.Fatal(err)
	}
	h.Observe(0.004)
	fl := NewFlightRecorder(8)
	fl.Record(FrameRecord{Frame: 0, Beta: 0.5, Workers: 1, Seconds: 0.004})

	s, _ := startTestServer(t, ServerOptions{Registry: reg, SLO: tr, Flight: fl})
	base := s.URL()

	code, ct, body := get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz: %d %q", code, body)
	}

	code, ct, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if ct != PromContentType {
		t.Errorf("/metrics content type %q, want %q", ct, PromContentType)
	}
	for _, want := range []string{
		"# TYPE t_frames_total counter",
		"t_frames_total 5",
		`t_frame_seconds_bucket{le="+Inf"} 1`,
		"t_frame_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, ct, body = get(t, base+"/metrics.json")
	if code != http.StatusOK || !strings.Contains(ct, "application/json") {
		t.Fatalf("/metrics.json: %d %s", code, ct)
	}
	if !json.Valid([]byte(body)) || !strings.Contains(body, "t.frames_total") {
		t.Errorf("/metrics.json body:\n%s", body)
	}

	code, _, body = get(t, base+"/debug/slo")
	if code != http.StatusOK {
		t.Fatalf("/debug/slo: status %d", code)
	}
	var rep SLOReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/debug/slo does not parse: %v\n%s", err, body)
	}
	if len(rep.Stages) != 1 || rep.Stages[0].Metric != "t.frame.seconds" || rep.Stages[0].Count != 1 || rep.Breaches != 0 {
		t.Errorf("/debug/slo report %+v", rep)
	}

	code, _, body = get(t, base+"/debug/frames")
	if code != http.StatusOK {
		t.Fatalf("/debug/frames: status %d", code)
	}
	var recs []FrameRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/debug/frames does not parse: %v\n%s", err, body)
	}
	if len(recs) != 1 || recs[0].Workers != 1 {
		t.Errorf("/debug/frames = %+v", recs)
	}

	code, _, body = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline: %d %q", code, body)
	}
}

func TestServerNilFallbacks(t *testing.T) {
	prev := SetFlightRecorder(nil)
	defer SetFlightRecorder(prev)
	s, _ := startTestServer(t, ServerOptions{Registry: NewRegistry()})
	base := s.URL()

	code, _, body := get(t, base+"/debug/slo")
	if code != http.StatusOK {
		t.Fatalf("/debug/slo: status %d", code)
	}
	var rep SLOReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil || len(rep.Stages) != 0 {
		t.Errorf("/debug/slo without tracker: %v %+v", err, rep)
	}

	code, _, body = get(t, base+"/debug/frames")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Errorf("/debug/frames without recorder: %d %q", code, body)
	}
}

// TestServerConcurrentScrape hammers every read endpoint while the
// instruments are being written — the race-detector proof that serving
// needs no coordination with a hot pipeline.
func TestServerConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t.frame.seconds", LatencyBuckets())
	tr := NewSLOTracker(reg, 64)
	if err := tr.SetBudget(SLOBudget{Metric: "t.frame.seconds", Quantile: 0.95, Budget: 0.010}); err != nil {
		t.Fatal(err)
	}
	fl := NewFlightRecorder(16)
	s, _ := startTestServer(t, ServerOptions{Registry: reg, SLO: tr, Flight: fl})
	base := s.URL()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64(i%20) * 0.001)
				reg.Counter("t.frames_total").Inc()
				reg.Gauge("t.last_beta").Set(0.5)
				fl.Record(FrameRecord{Frame: i, Workers: w})
				if i%50 == 0 {
					fl.Snapshot()
					tr.Check()
				}
			}
		}(w)
	}
	paths := []string{"/metrics", "/metrics.json", "/debug/slo", "/debug/frames", "/healthz"}
	var scrapes sync.WaitGroup
	for _, p := range paths {
		scrapes.Add(1)
		go func(p string) {
			defer scrapes.Done()
			for i := 0; i < 20; i++ {
				code, _, _ := get(t, base+p)
				if code != http.StatusOK {
					t.Errorf("GET %s: status %d", p, code)
					return
				}
			}
		}(p)
	}
	scrapes.Wait()
	close(stop)
	wg.Wait()
}

// TestServerContextCancel proves cancelling Start's context tears the
// server down without an explicit Shutdown call.
func TestServerContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewServer("127.0.0.1:0", ServerOptions{Registry: NewRegistry()})
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := get(t, s.URL()+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before cancel: %d", code)
	}
	cancel()
	select {
	case <-s.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("serve loop did not exit after context cancel")
	}
	if _, err := http.Get(s.URL() + "/healthz"); err == nil {
		t.Error("server still answering after context cancel")
	}
	sctx, scancel := context.WithTimeout(context.Background(), time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Errorf("shutdown after cancel: %v", err)
	}
}

func TestServerAddr(t *testing.T) {
	s := NewServer("127.0.0.1:0", ServerOptions{Registry: NewRegistry()})
	if got := s.Addr(); got != "127.0.0.1:0" {
		t.Errorf("pre-start Addr = %q", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), time.Second)
		defer scancel()
		_ = s.Shutdown(sctx) //nolint — test teardown
	}()
	if addr := s.Addr(); strings.HasSuffix(addr, ":0") {
		t.Errorf("post-start Addr %q still has port 0", addr)
	}
	if !strings.HasPrefix(s.URL(), "http://127.0.0.1:") {
		t.Errorf("URL = %q", s.URL())
	}
	if fmt.Sprintf("http://%s", s.Addr()) != s.URL() {
		t.Errorf("URL %q does not match Addr %q", s.URL(), s.Addr())
	}
}
