// CLI diagnostics hooks shared by the four commands: pprof CPU/heap
// profiles, a JSON span dump and a metrics-registry snapshot, all
// behind standard flags so every tool gains the same observability
// surface.
package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLIFlags wires the observability flags into a FlagSet and manages
// their lifecycle around a command run.
type CLIFlags struct {
	cpuProfile *string
	memProfile *string
	traceOut   *string
	metricsOut *string

	cpuFile   *os.File
	collector *Collector
	prevSink  Sink
	started   bool
}

// AddCLIFlags registers -cpuprofile, -memprofile, -trace-out and
// -metrics-out on fs and returns the handle to Start/Stop them around
// the run.
func AddCLIFlags(fs *flag.FlagSet) *CLIFlags {
	c := &CLIFlags{}
	c.cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	c.memProfile = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	c.traceOut = fs.String("trace-out", "", "write the pipeline span trace as JSON to this file")
	c.metricsOut = fs.String("metrics-out", "", "write the metrics registry snapshot as JSON to this file")
	return c
}

// TracingRequested reports whether -trace-out was given.
func (c *CLIFlags) TracingRequested() bool { return *c.traceOut != "" }

// Collector returns the span collector, installing one as the global
// sink on first use — commands that render span timelines (hebsvideo)
// call this to force collection even without -trace-out.
func (c *CLIFlags) Collector() *Collector {
	if c.collector == nil {
		c.collector = NewCollector()
		c.prevSink = SetSink(c.collector)
	}
	return c.collector
}

// Start begins CPU profiling and installs the span collector when the
// corresponding flags were given. Call after flag parsing.
func (c *CLIFlags) Start() error {
	c.started = true
	if *c.traceOut != "" {
		c.Collector()
	}
	if *c.cpuProfile != "" {
		f, err := os.Create(*c.cpuProfile)
		if err != nil {
			return fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // the profiler error takes precedence
			return fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		c.cpuFile = f
	}
	return nil
}

// Stop finishes profiling and writes the requested artifacts. It is
// safe to call on an un-Started handle (no-op) and restores the
// previous span sink.
func (c *CLIFlags) Stop() error {
	if !c.started {
		return nil
	}
	c.started = false
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(c.cpuFile.Close())
		c.cpuFile = nil
	}
	if c.collector != nil {
		if *c.traceOut != "" {
			keep(writeFile(*c.traceOut, c.collector.WriteJSON))
		}
		SetSink(c.prevSink)
		c.prevSink = nil
	}
	if *c.metricsOut != "" {
		keep(writeFile(*c.metricsOut, Default().WriteJSON))
	}
	if *c.memProfile != "" {
		runtime.GC() // materialize up-to-date allocation statistics
		keep(writeFile(*c.memProfile, pprof.WriteHeapProfile))
	}
	return firstErr
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}
