// CLI diagnostics hooks shared by the four commands: pprof CPU/heap
// profiles, a JSON span dump, a metrics-registry snapshot and the live
// telemetry server (-telemetry), all behind standard flags so every
// tool gains the same observability surface.
package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// DefaultSLOSpec is the -slo default: the per-frame latency budget the
// ROADMAP's daemon work gates on — a windowed p99 under a 30 fps
// refresh budget (~33ms).
const DefaultSLOSpec = "video.frame.seconds:p99<33.4ms"

// DefaultSLOMetrics are the latency histograms the telemetry wiring
// always tracks with rolling windows, budget or not, so /debug/slo
// reports windowed p50/p95/p99 per pipeline stage. The names mirror
// the stage metrics internal/core and internal/video register (string
// coupling only — obs stays dependency-free).
var DefaultSLOMetrics = []string{
	"video.frame.seconds",
	"core.stage.range_select.seconds",
	"core.stage.histogram.seconds",
	"core.stage.equalize.seconds",
	"core.stage.plc.seconds",
	"core.stage.driver.seconds",
	"core.stage.apply.seconds",
	"core.stage.distortion.seconds",
	"core.stage.power.seconds",
}

// CLIFlags wires the observability flags into a FlagSet and manages
// their lifecycle around a command run.
type CLIFlags struct {
	cpuProfile *string
	memProfile *string
	traceOut   *string
	metricsOut *string

	telemetry     *string
	telemetryHold *time.Duration
	sloSpec       *string
	flightOut     *string
	flightSize    *int

	cpuFile    *os.File
	collector  *Collector
	prevSink   Sink
	server     *Server
	tracker    *SLOTracker
	flight     *FlightRecorder
	prevFlight *FlightRecorder
	started    bool
}

// AddCLIFlags registers -cpuprofile, -memprofile, -trace-out,
// -metrics-out and the live-telemetry flags (-telemetry,
// -telemetry-hold, -slo, -flight-out, -flight-size) on fs and returns
// the handle to Start/Stop them around the run.
func AddCLIFlags(fs *flag.FlagSet) *CLIFlags {
	c := &CLIFlags{}
	c.cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	c.memProfile = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	c.traceOut = fs.String("trace-out", "", "write the pipeline span trace as JSON to this file")
	c.metricsOut = fs.String("metrics-out", "", "write the metrics registry snapshot as JSON to this file")
	c.telemetry = fs.String("telemetry", "", "serve live telemetry (/metrics, /debug/slo, /debug/frames, pprof) on this address (e.g. :9090)")
	c.telemetryHold = fs.Duration("telemetry-hold", 0, "keep the telemetry server up this long after the run finishes (scrape window)")
	c.sloSpec = fs.String("slo", DefaultSLOSpec, "SLO budgets as metric:pNN<budget[,...] (requires -telemetry; empty disables budgets)")
	c.flightOut = fs.String("flight-out", "", "write the frame flight-recorder ring as JSON to this file on exit (enables recording)")
	c.flightSize = fs.Int("flight-size", DefaultFlightSize, "frame flight-recorder ring capacity")
	return c
}

// TracingRequested reports whether -trace-out was given.
func (c *CLIFlags) TracingRequested() bool { return *c.traceOut != "" }

// Collector returns the span collector, installing one as the global
// sink on first use — commands that render span timelines (hebsvideo)
// call this to force collection even without -trace-out.
func (c *CLIFlags) Collector() *Collector {
	if c.collector == nil {
		c.collector = NewCollector()
		c.prevSink = SetSink(c.collector)
	}
	return c.collector
}

// Start begins CPU profiling, installs the span collector and brings
// up the live-telemetry layer (flight recorder, SLO tracker, HTTP
// server) when the corresponding flags were given. Call after flag
// parsing.
func (c *CLIFlags) Start() error {
	c.started = true
	if *c.traceOut != "" {
		c.Collector()
	}
	// The flight recorder turns on when anything consumes it: a dump
	// file or the /debug/frames endpoint. Otherwise the pipeline pays
	// only the nil check per frame.
	if *c.flightOut != "" || *c.telemetry != "" {
		c.flight = NewFlightRecorder(*c.flightSize)
		c.prevFlight = SetFlightRecorder(c.flight)
	}
	if *c.telemetry != "" {
		c.tracker = NewSLOTracker(Default(), DefaultSLOWindow)
		for _, m := range DefaultSLOMetrics {
			c.tracker.Track(m)
		}
		budgets, err := ParseSLOSpecs(*c.sloSpec)
		if err != nil {
			return err
		}
		for _, b := range budgets {
			if err := c.tracker.SetBudget(b); err != nil {
				return err
			}
		}
		// A breach mid-run dumps the ring immediately, while the slow
		// frames are still in it — the exit-time dump may be too late
		// on a long run.
		if *c.flightOut != "" {
			out := *c.flightOut
			rec := c.flight
			c.tracker.OnBreach = func(*SLOReport) {
				_ = writeFile(out, rec.WriteJSON) //hebslint:allow errdrop best-effort breach dump; the exit-time write reports errors
			}
		}
		c.server = NewServer(*c.telemetry, ServerOptions{
			Registry: Default(),
			SLO:      c.tracker,
			Flight:   c.flight,
		})
		if err := c.server.Start(context.Background()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving on %s\n", c.server.URL())
	}
	if *c.cpuProfile != "" {
		f, err := os.Create(*c.cpuProfile)
		if err != nil {
			return fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // the profiler error takes precedence
			return fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		c.cpuFile = f
	}
	return nil
}

// Telemetry returns the running telemetry server, or nil when
// -telemetry was not given (valid between Start and Stop).
func (c *CLIFlags) Telemetry() *Server { return c.server }

// SLO returns the SLO tracker behind /debug/slo, or nil when
// -telemetry was not given — harnesses call Check on it to gate
// programmatically.
func (c *CLIFlags) SLO() *SLOTracker { return c.tracker }

// Flight returns the flight recorder installed by Start, or nil when
// recording is disabled.
func (c *CLIFlags) Flight() *FlightRecorder { return c.flight }

// Stop finishes profiling and writes the requested artifacts. It is
// safe to call on an un-Started handle (no-op) and restores the
// previous span sink.
func (c *CLIFlags) Stop() error {
	if !c.started {
		return nil
	}
	c.started = false
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(c.cpuFile.Close())
		c.cpuFile = nil
	}
	if c.collector != nil {
		if *c.traceOut != "" {
			keep(writeFile(*c.traceOut, c.collector.WriteJSON))
		}
		SetSink(c.prevSink)
		c.prevSink = nil
	}
	if c.tracker != nil {
		// Final budget check: bumps breach counters (and the OnBreach
		// flight dump) so a run that never got scraped still records
		// whether it met its SLOs.
		c.tracker.Check()
	}
	if c.server != nil {
		if hold := *c.telemetryHold; hold > 0 {
			// Scrape window: keep serving after the work finishes so an
			// external scraper (the CI smoke job, a human with curl) can
			// read the final state. An already-dead server ends the hold
			// early.
			select {
			case <-time.After(hold):
			case <-c.server.Done():
			}
		}
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		keep(c.server.Shutdown(sctx))
		cancel()
		c.server = nil
		c.tracker = nil
	}
	if c.flight != nil {
		if *c.flightOut != "" {
			keep(writeFile(*c.flightOut, c.flight.WriteJSON))
		}
		SetFlightRecorder(c.prevFlight)
		c.flight = nil
		c.prevFlight = nil
	}
	if *c.metricsOut != "" {
		keep(writeFile(*c.metricsOut, Default().WriteJSON))
	}
	if *c.memProfile != "" {
		runtime.GC() // materialize up-to-date allocation statistics
		keep(writeFile(*c.memProfile, pprof.WriteHeapProfile))
	}
	return firstErr
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}
