// The frame flight recorder: a fixed-size lock-free ring of per-frame
// records fed by the video pipeline, so when a frame blows its latency
// budget there is a record of *which* frame and what the governor did
// to it — not just a histogram bucket increment. The recorder follows
// the span sink's enable discipline: a process-wide atomic pointer,
// nil when disabled, so the per-frame cost is one predictable atomic
// load when off and one small allocation plus two atomic ops when on.
package obs

import (
	"encoding/json"
	"io"
	"sync/atomic"
)

// FrameRecord is one processed video frame's flight entry.
type FrameRecord struct {
	// Frame is the clip-global frame index.
	Frame int `json:"frame"`
	// TargetBeta is the frame's own HEBS optimum; Beta the applied
	// (slew-limited, re-quantized) backlight factor.
	TargetBeta float64 `json:"target_beta"`
	Beta       float64 `json:"beta"`
	// Range is the dynamic range the frame was transformed at.
	Range int `json:"range"`
	// HistHash is an FNV-1a hash of the frame's 256-bin histogram
	// (0 when the pipeline did not extract one on this path).
	HistHash uint64 `json:"hist_hash,omitempty"`
	// PlanCached reports whether the frame's Plan came from the
	// engine's LRU rather than a fresh equalize/plc solve.
	PlanCached bool `json:"plan_cached,omitempty"`
	// Governor decisions, mirroring the per-frame counters.
	RangeReused bool `json:"range_reused,omitempty"`
	CutSnap     bool `json:"cut_snap,omitempty"`
	SlewLimited bool `json:"slew_limited,omitempty"`
	// FusedApply reports the delta fast path: the frame's histogram was
	// maintained incrementally, its measurements were memoized from the
	// previous identical frame, and Λ ran as one packed traversal.
	FusedApply bool `json:"fused_apply,omitempty"`
	// TileChangeRatio is changed/total tiles of the delta analysis for
	// this frame (0 when delta analysis is off or nothing changed).
	TileChangeRatio float64 `json:"tile_change_ratio,omitempty"`
	// Zoned-walk telemetry: zone count of the backlight backend (0 on
	// the classic global walk), max−min of the applied per-zone β
	// field, and the spatial-smoothing sweeps the frame needed.
	Zones          int     `json:"zones,omitempty"`
	ZoneBetaSpread float64 `json:"zone_beta_spread,omitempty"`
	SmoothIters    int     `json:"smooth_iters,omitempty"`
	// Workers is the scheduler's resolved worker bound (1 = serial).
	Workers int `json:"workers"`
	// Seconds is the frame's Apply+measure wall time — the same
	// quantity video.frame.seconds observes.
	Seconds float64 `json:"seconds"`
}

// FlightRecorder retains the last `size` frame records in a ring.
// Record is lock-free (an atomic slot reservation plus an atomic
// pointer store), so pipeline workers feed it without contention;
// Snapshot reads a best-effort consistent copy.
type FlightRecorder struct {
	slots []atomic.Pointer[FrameRecord]
	idx   atomic.Uint64
}

// DefaultFlightSize is the ring capacity the CLI wiring uses.
const DefaultFlightSize = 256

// NewFlightRecorder returns a recorder retaining the last `size`
// records (size < 1 is clamped to 1).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FrameRecord], size)}
}

// Size returns the ring capacity.
func (f *FlightRecorder) Size() int { return len(f.slots) }

// Record appends one frame record, evicting the oldest when full.
//
//hebs:noalloc
//hebs:noalloc-allow the ring's one deliberate per-record allocation: storing &rec keeps slot reads tear-free
func (f *FlightRecorder) Record(rec FrameRecord) {
	i := f.idx.Add(1) - 1
	f.slots[i%uint64(len(f.slots))].Store(&rec)
}

// Recorded returns the total number of records ever fed (not capped
// at the ring size).
func (f *FlightRecorder) Recorded() uint64 { return f.idx.Load() }

// Snapshot returns the retained records, oldest first. Under
// concurrent Record calls a slot mid-overwrite yields either its old
// or its new record (never a torn one).
func (f *FlightRecorder) Snapshot() []FrameRecord {
	total := f.idx.Load()
	size := uint64(len(f.slots))
	n := total
	start := uint64(0)
	if total > size {
		n = size
		start = total % size // oldest retained record's slot
	}
	out := make([]FrameRecord, 0, n)
	for k := uint64(0); k < n; k++ {
		if rec := f.slots[(start+k)%size].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	return out
}

// WriteJSON dumps the retained records (oldest first) as an indented
// JSON array — the /debug/frames and -flight-out format.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	recs := f.Snapshot()
	if recs == nil {
		recs = []FrameRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// flight is the process-wide recorder, nil when disabled.
var flight atomic.Pointer[FlightRecorder]

// SetFlightRecorder installs (or, with nil, disables) the process-wide
// flight recorder and returns the previous one.
func SetFlightRecorder(f *FlightRecorder) *FlightRecorder {
	return flight.Swap(f)
}

// Flight returns the installed flight recorder, or nil when recording
// is disabled. Callers guard their Record with this nil check so a
// disabled recorder costs one atomic load and zero allocations.
func Flight() *FlightRecorder { return flight.Load() }
