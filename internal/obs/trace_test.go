package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// withCollector installs a fresh collector for the test and restores
// the previous sink afterwards.
func withCollector(t *testing.T) *Collector {
	t.Helper()
	c := NewCollector()
	prev := SetSink(c)
	t.Cleanup(func() { SetSink(prev) })
	return c
}

func TestDisabledSinkNoop(t *testing.T) {
	prev := SetSink(nil)
	defer SetSink(prev)
	if TracingEnabled() {
		t.Fatal("tracing reported enabled with nil sink")
	}
	sp := StartSpan("root")
	if sp != nil {
		t.Fatalf("StartSpan with no sink returned %v, want nil", sp)
	}
	// Every method on the nil span must be a safe no-op.
	child := sp.Child("child")
	child.SetFloat("beta", 0.5)
	child.SetInt("range", 128)
	child.SetBool("cut", true)
	child.SetString("stage", "plc")
	child.End()
	sp.End()
	if child != nil {
		t.Fatalf("child of nil span is %v, want nil", child)
	}
}

func TestSpanNestingAndOrdering(t *testing.T) {
	c := withCollector(t)

	root := StartSpan("core.Process")
	if root == nil {
		t.Fatal("StartSpan returned nil with sink installed")
	}
	h := root.Child("stage.histogram")
	h.End()
	eq := root.Child("stage.equalize")
	inner := eq.Child("plc.dp")
	inner.End()
	eq.End()
	root.SetInt("range", 150)
	root.End()

	spans := c.Spans()
	if len(spans) != 4 {
		t.Fatalf("collected %d spans, want 4", len(spans))
	}
	// Completion order: leaves before their parents.
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	want := []string{"stage.histogram", "plc.dp", "stage.equalize", "core.Process"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("completion order %v, want %v", names, want)
		}
	}
	// Parent links form the right tree.
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["core.Process"].Parent != 0 {
		t.Errorf("root has parent %d", byName["core.Process"].Parent)
	}
	for child, parent := range map[string]string{
		"stage.histogram": "core.Process",
		"stage.equalize":  "core.Process",
		"plc.dp":          "stage.equalize",
	} {
		if byName[child].Parent != byName[parent].ID {
			t.Errorf("%s parent = %d, want %s (%d)",
				child, byName[child].Parent, parent, byName[parent].ID)
		}
	}
	if v, ok := byName["core.Process"].Attrs["range"].(int); !ok || v != 150 {
		t.Errorf("root attrs = %v, want range=150", byName["core.Process"].Attrs)
	}
	// Children index groups and orders by start time.
	idx := c.Children()
	if roots := idx[0]; len(roots) != 1 || roots[0].Name != "core.Process" {
		t.Errorf("roots = %v", idx[0])
	}
	kids := idx[byName["core.Process"].ID]
	if len(kids) != 2 || kids[0].Name != "stage.histogram" || kids[1].Name != "stage.equalize" {
		t.Errorf("children of root = %v", kids)
	}
}

func TestSpanChildOfNilParentIsRoot(t *testing.T) {
	c := withCollector(t)
	var parent *Span
	sp := parent.Child("video.frame")
	if sp == nil {
		t.Fatal("Child on nil parent with sink installed returned nil")
	}
	sp.End()
	if spans := c.Spans(); len(spans) != 1 || spans[0].Parent != 0 {
		t.Fatalf("spans = %v, want one root", spans)
	}
}

func TestSpanDoubleEndDeliversOnce(t *testing.T) {
	c := withCollector(t)
	sp := StartSpan("once")
	sp.End()
	sp.End()
	if n := len(c.Spans()); n != 1 {
		t.Fatalf("double End delivered %d spans", n)
	}
}

func TestCollectorConcurrentSpans(t *testing.T) {
	c := withCollector(t)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := StartSpan("worker")
				sp.Child("leaf").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if n := len(c.Spans()); n != workers*per*2 {
		t.Fatalf("collected %d spans, want %d", n, workers*per*2)
	}
}

func TestCollectorWriteJSONShape(t *testing.T) {
	c := NewCollector()
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	c.SpanEnd(SpanData{ID: 2, Parent: 1, Name: "stage.plc", Start: base.Add(time.Millisecond),
		Duration: 2 * time.Millisecond, Attrs: map[string]any{"segments": 10}})
	c.SpanEnd(SpanData{ID: 1, Name: "core.Process", Start: base, Duration: 5 * time.Millisecond})
	var sb strings.Builder
	if err := c.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("trace dump is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(got) != 2 {
		t.Fatalf("dump has %d spans, want 2", len(got))
	}
	// Start-time ordered: the root (earlier) first despite later End.
	if got[0]["name"] != "core.Process" || got[1]["name"] != "stage.plc" {
		t.Errorf("dump order wrong: %v", got)
	}
	for _, key := range []string{"id", "name", "start", "duration_ns"} {
		if _, ok := got[0][key]; !ok {
			t.Errorf("span JSON missing %q: %v", key, got[0])
		}
	}
	if _, ok := got[1]["attrs"].(map[string]any); !ok {
		t.Errorf("span attrs not serialized: %v", got[1])
	}
}

// TestNilSinkOverheadGuard is the benchmark guard of the CI target: the
// disabled-tracing fast path across a whole Process-worth of span sites
// (~10 StartSpan/Child/End pairs) must cost well under a microsecond,
// i.e. be within noise of the uninstrumented pipeline, whose cheapest
// configuration runs in hundreds of microseconds.
func TestNilSinkOverheadGuard(t *testing.T) {
	prev := SetSink(nil)
	defer SetSink(prev)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			root := StartSpan("core.Process")
			for s := 0; s < 9; s++ {
				sp := root.Child("stage")
				sp.SetInt("k", s)
				sp.End()
			}
			root.End()
		}
	})
	perOp := res.NsPerOp()
	// ~10 span sites at a few ns each; 2µs leaves two orders of
	// magnitude of headroom against CI noise while still catching an
	// accidental allocation or lock on the disabled path.
	if perOp > 2000 {
		t.Errorf("disabled-path span overhead %d ns per Process-worth of sites; want <= 2000", perOp)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Errorf("disabled-path spans allocate %d objects/op; want 0", allocs)
	}
}
