package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestWindowQuantileMatchesBruteForce drives a window with random data
// and checks every reported quantile against a brute-force sorted
// slice of the exact same retained suffix.
func TestWindowQuantileMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, size := range []int{1, 7, 64, 1000} {
		w := NewWindow(size)
		var all []float64
		for i := 0; i < 3*size+17; i++ {
			v := rng.ExpFloat64() * 0.01 // latency-shaped
			w.Observe(v)
			all = append(all, v)

			keep := all
			if len(keep) > size {
				keep = keep[len(keep)-size:]
			}
			want := append([]float64(nil), keep...)
			sort.Float64s(want)
			got := w.Values(nil)
			if len(got) != len(want) {
				t.Fatalf("size %d after %d: window holds %d values, want %d", size, i+1, len(got), len(want))
			}
			sort.Float64s(got)
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("size %d after %d: window contents diverge at %d: %v vs %v", size, i+1, k, got[k], want[k])
				}
			}
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1} {
				if g, wq := Quantile(got, q), Quantile(want, q); g != wq {
					t.Fatalf("size %d after %d: q%v = %v, want %v", size, i+1, q, g, wq)
				}
			}
		}
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	cases := []struct {
		q    float64
		want float64
	}{{0.25, 1}, {0.5, 2}, {0.75, 3}, {0.99, 4}, {1, 4}, {0.01, 1}}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
}

// TestWindowConcurrent hammers one window from many goroutines; run
// under -race this proves Observe/Values are race-clean, and the
// total-count bookkeeping must be exact.
func TestWindowConcurrent(t *testing.T) {
	w := NewWindow(128)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Observe(float64(g*per + i))
				if i%100 == 0 {
					_ = w.Values(nil)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := w.Count(); got != 128 {
		t.Errorf("Count = %d, want 128 (full window)", got)
	}
	vals := w.Values(nil)
	for _, v := range vals {
		if v < 0 || v >= workers*per {
			t.Errorf("window holds out-of-range value %v", v)
		}
	}
}

func TestHistogramWindowAttach(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t.seconds", LatencyBuckets())
	if h.Window() != nil {
		t.Fatal("fresh histogram has a window")
	}
	h.Observe(0.5) // pre-attach observations are simply not windowed
	w := h.EnableWindow(16)
	if h.EnableWindow(99) != w {
		t.Error("EnableWindow is not idempotent")
	}
	h.Observe(0.001)
	h.Observe(0.002)
	if got := w.Count(); got != 2 {
		t.Errorf("window count = %d, want 2 (pre-attach observe must not appear)", got)
	}
}

func TestParseSLOSpecs(t *testing.T) {
	got, err := ParseSLOSpecs("video.frame.seconds:p99<33ms, core.stage.plc.seconds:p95<0.002")
	if err != nil {
		t.Fatal(err)
	}
	want := []SLOBudget{
		{Metric: "video.frame.seconds", Quantile: 0.99, Budget: 0.033},
		{Metric: "core.stage.plc.seconds", Quantile: 0.95, Budget: 0.002},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d budgets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Metric != want[i].Metric || got[i].Quantile != want[i].Quantile ||
			math.Abs(got[i].Budget-want[i].Budget) > 1e-12 {
			t.Errorf("budget %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if b, err := ParseSLOSpecs("m.seconds:p999<1s"); err != nil || b[0].Quantile != 0.999 {
		t.Errorf("p999: %v %v", b, err)
	}
	if b, err := ParseSLOSpecs(""); err != nil || len(b) != 0 {
		t.Errorf("empty spec: %v %v", b, err)
	}
	if b, err := ParseSLOSpecs(DefaultSLOSpec); err != nil || len(b) != 1 {
		t.Errorf("DefaultSLOSpec must parse: %v %v", b, err)
	}
	for _, bad := range []string{"noquantile", "m:p99", "m:q99<1", "m:p99<", "m:p99<-1", "m:p0<1", "m:p100<1x"} {
		if _, err := ParseSLOSpecs(bad); err == nil {
			t.Errorf("ParseSLOSpecs(%q) accepted", bad)
		}
	}
}

func TestSLOTrackerBreach(t *testing.T) {
	r := NewRegistry()
	tr := NewSLOTracker(r, 64)
	if err := tr.SetBudget(SLOBudget{Metric: "t.frame.seconds", Quantile: 0.99, Budget: 0.010}); err != nil {
		t.Fatal(err)
	}
	tr.Track("t.other.seconds")
	var breached []*SLOReport
	tr.OnBreach = func(rep *SLOReport) { breached = append(breached, rep) }

	h := r.Histogram("t.frame.seconds", LatencyBuckets())
	for i := 0; i < 60; i++ {
		h.Observe(0.005) // all under budget
	}
	rep := tr.Check()
	if rep.Breached() || len(breached) != 0 {
		t.Fatalf("under-budget window breached: %+v", rep)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(rep.Stages))
	}
	st := rep.Stages[0]
	if st.Metric != "t.frame.seconds" || st.Count != 60 || st.P99 != 0.005 || st.Value != 0.005 {
		t.Errorf("stage report %+v", st)
	}

	// Push the p99 over budget: 10% of the window at 50ms.
	for i := 0; i < 10; i++ {
		h.Observe(0.050)
	}
	rep = tr.Check()
	if !rep.Breached() {
		t.Fatalf("over-budget window not breached: %+v", rep.Stages[0])
	}
	if len(breached) != 1 {
		t.Errorf("OnBreach ran %d times, want 1", len(breached))
	}
	if got := r.Counter("slo.t.frame.seconds.breaches_total").Value(); got != 1 {
		t.Errorf("breach counter = %d, want 1", got)
	}
	if rep.Stages[0].Breaches != 1 {
		t.Errorf("stage Breaches = %d, want 1", rep.Stages[0].Breaches)
	}
	// A second check over the same window counts again (sampled
	// semantics) and the untracked budget fields stay zero.
	rep = tr.Check()
	if got := r.Counter("slo.t.frame.seconds.breaches_total").Value(); got != 2 {
		t.Errorf("breach counter after second check = %d, want 2", got)
	}
	if other := rep.Stages[1]; other.Metric != "t.other.seconds" || other.Budget != 0 || other.Breached {
		t.Errorf("unbudgeted stage %+v", other)
	}
}

func TestSLOTrackerValidation(t *testing.T) {
	tr := NewSLOTracker(NewRegistry(), 8)
	for _, b := range []SLOBudget{
		{Metric: "", Quantile: 0.5, Budget: 1},
		{Metric: "m", Quantile: 0, Budget: 1},
		{Metric: "m", Quantile: 1, Budget: 1},
		{Metric: "m", Quantile: 0.5, Budget: 0},
	} {
		if err := tr.SetBudget(b); err == nil {
			t.Errorf("SetBudget(%+v) accepted", b)
		}
	}
}
