// The metrics registry: counters, gauges and fixed-bucket histograms
// with get-or-create registration, an expvar-compatible export and a
// JSON snapshot (-metrics-out). All instruments are safe for concurrent
// use and cheap enough to record unconditionally — a counter Add is one
// atomic add; a histogram Observe is a binary search plus two atomic
// adds — so metrics stay on even when tracing is disabled.
package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0 for the value to
// stay monotone; this is not enforced).
//
//hebs:noalloc
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//hebs:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric holding the last recorded value.
type Gauge struct{ bits atomic.Uint64 }

// Set records the value.
//
//hebs:noalloc
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (atomically, via CAS — safe for
// concurrent inc/dec pairs such as an in-flight counter).
//
//hebs:noalloc
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last recorded value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric. Bounds are the
// inclusive upper edges of each bucket; observations above the last
// bound land in the overflow bucket. Bucket layout is fixed at
// construction so snapshots are mergeable across processes.
type Histogram struct {
	bounds  []float64
	counts  []int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 accumulated via CAS

	// win, when attached (SLO tracking), additionally receives every
	// observation into a rolling window. Nil costs one predictable
	// atomic load per Observe — the same discipline as the span sink.
	win atomic.Pointer[Window]
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
//
//hebs:noalloc
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddInt64(&h.counts[i], 1)
	h.count.Add(1)
	if w := h.win.Load(); w != nil {
		w.Observe(v)
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// EnableWindow attaches a rolling window of the given size to the
// histogram (idempotent: an existing window is kept and returned, its
// original size preserved). The windowed quantile layer of the SLO
// tracker calls this; plain histograms never pay more than the nil
// check in Observe.
func (h *Histogram) EnableWindow(size int) *Window {
	for {
		if w := h.win.Load(); w != nil {
			return w
		}
		w := NewWindow(size)
		if h.win.CompareAndSwap(nil, w) {
			return w
		}
	}
}

// Window returns the attached rolling window, or nil when none.
func (h *Histogram) Window() *Window { return h.win.Load() }

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper edges.
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations with value <= LE (the overflow bucket is reported
// separately, keeping the JSON free of non-encodable +Inf).
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	Buckets  []BucketCount `json:"buckets"`
	Overflow int64         `json:"overflow"`
}

// Snapshot captures the histogram's current state. Under concurrent
// Observe calls the bucket counts may trail Count by in-flight
// observations; each bucket count is itself exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Buckets: make([]BucketCount, len(h.bounds)),
	}
	for i, b := range h.bounds {
		s.Buckets[i] = BucketCount{LE: b, Count: atomic.LoadInt64(&h.counts[i])}
	}
	s.Overflow = atomic.LoadInt64(&h.counts[len(h.bounds)])
	return s
}

// LinearBuckets returns n upper edges start+width, start+2·width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i+1)
	}
	return out
}

// ExponentialBuckets returns n upper edges start, start·factor, ….
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the shared bucket layout for per-stage latency
// histograms: 10µs … ~5.2s in doubling steps (seconds, 20 buckets).
// The ladder deliberately extends well past any frame budget — the
// slow-path outliers (cold caches, first-frame exact searches, debug
// builds) are exactly the observations a latency histogram exists to
// resolve, so they must not all collapse into the +Inf bucket the
// Prometheus exposition appends.
func LatencyBuckets() []float64 { return ExponentialBuckets(10e-6, 2, 20) }

// Registry holds named instruments. Registration is get-or-create:
// asking for an existing name returns the existing instrument (package
// init order across instrumented packages therefore cannot panic).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by the instrumented
// packages and the CLI -metrics-out hook.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds if needed (an existing histogram keeps its original
// layout; bounds are ignored then).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// NewCounter registers a counter on the default registry.
func NewCounter(name string) *Counter { return Default().Counter(name) }

// NewGauge registers a gauge on the default registry.
func NewGauge(name string) *Gauge { return Default().Gauge(name) }

// NewHistogram registers a histogram on the default registry.
func NewHistogram(name string, bounds []float64) *Histogram {
	return Default().Histogram(name, bounds)
}

// Snapshot is a point-in-time copy of a registry, the -metrics-out
// JSON shape. Map keys serialize in sorted order, so the output is
// deterministic for a given set of metric names.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

var publishOnce sync.Once

// PublishExpvar exposes the default registry on the standard expvar
// page as "hebs_metrics" (idempotent; expvar allows one publication
// per name per process).
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("hebs_metrics", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}
