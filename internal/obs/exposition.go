// Prometheus text exposition (format version 0.0.4) for the metrics
// registry. The registry's native snapshot is the -metrics-out JSON;
// this file renders the same instruments in the line format every
// Prometheus-compatible scraper understands: counters and gauges as
// single samples, histograms as cumulative le-bucket series with an
// explicit +Inf bucket plus the _sum and _count samples. Output is
// sorted by metric name, so for a fixed set of instruments the bytes
// are deterministic (golden-tested).
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// PromContentType is the Content-Type the /metrics endpoint serves:
// the text-based exposition format, version 0.0.4.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName maps a registry metric name onto the Prometheus name
// grammar. Registry names follow the project convention
// ^[a-z][a-z0-9_.]*$ (enforced by the hebslint metricname analyzer),
// so in practice the only rewrite is '.' → '_'; the sanitizer is
// nevertheless total — any byte outside [a-zA-Z0-9_:] becomes '_' and
// a leading digit gains a '_' prefix — so a misnamed metric degrades
// to an ugly name instead of corrupting the exposition.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// promFloat renders a float64 sample value (or le label) in the
// exposition grammar: shortest round-trip decimal, with the spellings
// Prometheus expects for the non-finite values.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes a point-in-time snapshot of the registry in
// the Prometheus text format. Histogram buckets are emitted cumulative
// (each le bucket includes every smaller bucket) and always end with
// the +Inf bucket, whose value equals the _count sample — the overflow
// bucket the JSON snapshot reports separately is folded in there.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[n]))
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := PromName(n)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, promFloat(b.LE), cum)
		}
		cum += h.Overflow
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count)
	}
	return bw.Flush()
}
