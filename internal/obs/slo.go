// Rolling SLO tracking: fixed-size windows of recent observations
// layered on the latency histograms, windowed quantiles computed on
// demand, and configurable per-metric budgets ("video.frame.seconds
// p99 < 33ms") whose breaches are counted in the registry. The window
// write path is O(1) and lock-free — an atomic index reservation plus
// one atomic store — so it is safe to leave attached to per-frame
// histograms; all sorting happens on the read side (a /debug/slo
// request or an explicit Check), which is off the frame hot path.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSLOWindow is the observation window size used by the CLI
// telemetry wiring: at 30 fps it spans ~34s of frames, enough for a
// stable p99 with a bounded (8 KiB) footprint per tracked metric.
const DefaultSLOWindow = 1024

// Window is a fixed-size ring of the most recent observations of one
// metric. Observe is O(1), allocation-free and safe for concurrent
// use; Values/Quantiles read a best-effort snapshot (a slot being
// overwritten concurrently yields that writer's previous value — each
// slot load is itself atomic, so no torn floats).
type Window struct {
	slots []atomic.Uint64 // float64 bits
	idx   atomic.Uint64   // total observations ever; next slot = idx % len
}

// NewWindow returns a window retaining the last `size` observations
// (size < 1 is clamped to 1).
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{slots: make([]atomic.Uint64, size)}
}

// Size returns the window capacity.
func (w *Window) Size() int { return len(w.slots) }

// Observe records one value, evicting the oldest when full.
//
//hebs:noalloc
func (w *Window) Observe(v float64) {
	i := w.idx.Add(1) - 1
	w.slots[i%uint64(len(w.slots))].Store(math.Float64bits(v))
}

// Count returns the number of observations currently held:
// min(total observed, size).
func (w *Window) Count() int {
	n := w.idx.Load()
	if n > uint64(len(w.slots)) {
		return len(w.slots)
	}
	return int(n)
}

// Values appends the windowed observations to dst (unordered) and
// returns the extended slice.
func (w *Window) Values(dst []float64) []float64 {
	n := w.Count()
	for i := 0; i < n; i++ {
		dst = append(dst, math.Float64frombits(w.slots[i].Load()))
	}
	return dst
}

// Quantile returns the q-quantile (0 < q <= 1) of a sorted sample by
// the nearest-rank method: the smallest value v such that at least
// q·n observations are <= v. An empty sample returns 0.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// SLOBudget is one budget rule: the metric's windowed Quantile must
// not exceed Budget (seconds for the latency histograms).
type SLOBudget struct {
	Metric   string  `json:"metric"`
	Quantile float64 `json:"quantile"` // in (0, 1)
	Budget   float64 `json:"budget"`   // seconds
}

// ParseSLOSpecs parses the -slo flag grammar: comma-separated
// "metric:pNN<budget" rules, e.g.
//
//	video.frame.seconds:p99<33ms,core.stage.plc.seconds:p95<0.002
//
// The quantile token is p followed by decimal digits (p50 → 0.50,
// p999 → 0.999); the budget is either a plain float in seconds or a
// time.ParseDuration string.
func ParseSLOSpecs(s string) ([]SLOBudget, error) {
	var out []SLOBudget
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		colon := strings.LastIndex(part, ":")
		if colon <= 0 {
			return nil, fmt.Errorf("obs: SLO spec %q: want metric:pNN<budget", part)
		}
		metric, rule := part[:colon], part[colon+1:]
		lt := strings.Index(rule, "<")
		if lt < 0 {
			return nil, fmt.Errorf("obs: SLO spec %q: missing '<'", part)
		}
		qtok, btok := rule[:lt], rule[lt+1:]
		if len(qtok) < 2 || qtok[0] != 'p' {
			return nil, fmt.Errorf("obs: SLO spec %q: quantile token %q is not pNN", part, qtok)
		}
		digits := qtok[1:]
		qi, err := strconv.Atoi(digits)
		if err != nil || qi <= 0 {
			return nil, fmt.Errorf("obs: SLO spec %q: quantile token %q is not pNN", part, qtok)
		}
		q := float64(qi) / math.Pow10(len(digits))
		if q <= 0 || q >= 1 {
			return nil, fmt.Errorf("obs: SLO spec %q: quantile %v out of (0,1)", part, q)
		}
		budget, err := strconv.ParseFloat(btok, 64)
		if err != nil {
			d, derr := time.ParseDuration(btok)
			if derr != nil {
				return nil, fmt.Errorf("obs: SLO spec %q: budget %q is neither seconds nor a duration", part, btok)
			}
			budget = d.Seconds()
		}
		if budget <= 0 {
			return nil, fmt.Errorf("obs: SLO spec %q: budget must be positive, got %v", part, budget)
		}
		out = append(out, SLOBudget{Metric: metric, Quantile: q, Budget: budget})
	}
	return out, nil
}

// SLOStageReport is one tracked metric's windowed state at Check time.
type SLOStageReport struct {
	Metric string `json:"metric"`
	// Count is the number of observations in the window.
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Budget fields are zero when the metric has no budget rule.
	Quantile float64 `json:"quantile,omitempty"`
	Budget   float64 `json:"budget,omitempty"`
	// Value is the windowed Quantile the budget is judged against.
	Value    float64 `json:"value,omitempty"`
	Breached bool    `json:"breached,omitempty"`
	// Breaches is the cumulative breach count for this metric (the
	// registry counter slo.<metric>.breaches_total).
	Breaches int64 `json:"breaches_total,omitempty"`
}

// SLOReport is the /debug/slo payload and the programmatic gate for
// the soak/bench harnesses.
type SLOReport struct {
	Window int              `json:"window"`
	Stages []SLOStageReport `json:"stages"`
	// Breaches counts the budget rules breached by this check.
	Breaches int `json:"breaches"`
}

// Breached reports whether any budget rule failed in this check.
func (r *SLOReport) Breached() bool { return r.Breaches > 0 }

// SLOTracker attaches rolling windows to named latency histograms and
// judges their windowed quantiles against budgets. Breach accounting
// is sampled: each Check that finds a metric over budget increments
// that metric's slo.<metric>.breaches_total counter once, so the
// counter measures "checks that saw a breach", not breached frames.
type SLOTracker struct {
	reg    *Registry
	window int

	mu      sync.Mutex
	metrics []string // tracked metrics in registration order
	tracked map[string]*Window
	budgets map[string]SLOBudget

	// OnBreach, when non-nil, runs synchronously at the end of any
	// Check that found at least one breach — the hook the CLI uses to
	// dump the flight recorder while the offending frames are still in
	// the ring.
	OnBreach func(*SLOReport)
}

// NewSLOTracker returns a tracker over reg (nil selects the default
// registry) with the given per-metric window size (<= 0 selects
// DefaultSLOWindow).
func NewSLOTracker(reg *Registry, window int) *SLOTracker {
	if reg == nil {
		reg = Default()
	}
	if window <= 0 {
		window = DefaultSLOWindow
	}
	return &SLOTracker{
		reg:     reg,
		window:  window,
		tracked: make(map[string]*Window),
		budgets: make(map[string]SLOBudget),
	}
}

// Track attaches a rolling window to the named latency histogram
// (created with the default latency ladder if it does not exist yet)
// so its windowed quantiles appear in Check reports. Tracking twice is
// a no-op.
func (t *SLOTracker) Track(metric string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trackLocked(metric)
}

func (t *SLOTracker) trackLocked(metric string) {
	if _, ok := t.tracked[metric]; ok {
		return
	}
	h := t.reg.Histogram(metric, LatencyBuckets())
	t.tracked[metric] = h.EnableWindow(t.window)
	t.metrics = append(t.metrics, metric)
}

// SetBudget installs (or replaces) the budget rule for b.Metric and
// tracks the metric.
func (t *SLOTracker) SetBudget(b SLOBudget) error {
	if b.Metric == "" {
		return fmt.Errorf("obs: SLO budget with empty metric")
	}
	if b.Quantile <= 0 || b.Quantile >= 1 {
		return fmt.Errorf("obs: SLO budget %s: quantile %v out of (0,1)", b.Metric, b.Quantile)
	}
	if b.Budget <= 0 {
		return fmt.Errorf("obs: SLO budget %s: budget must be positive, got %v", b.Metric, b.Budget)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trackLocked(b.Metric)
	t.budgets[b.Metric] = b
	return nil
}

// Budgets returns the installed budget rules in tracking order.
func (t *SLOTracker) Budgets() []SLOBudget {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SLOBudget, 0, len(t.budgets))
	for _, m := range t.metrics {
		if b, ok := t.budgets[m]; ok {
			out = append(out, b)
		}
	}
	return out
}

// Check computes the windowed quantiles of every tracked metric,
// judges the budget rules, bumps breach counters and returns the
// report. Safe for concurrent use; cost is O(window·log window) per
// tracked metric, entirely on the caller's goroutine.
func (t *SLOTracker) Check() *SLOReport {
	t.mu.Lock()
	metrics := append([]string(nil), t.metrics...)
	windows := make(map[string]*Window, len(t.tracked))
	for k, v := range t.tracked {
		windows[k] = v
	}
	budgets := make(map[string]SLOBudget, len(t.budgets))
	for k, v := range t.budgets {
		budgets[k] = v
	}
	onBreach := t.OnBreach
	t.mu.Unlock()

	rep := &SLOReport{Window: t.window}
	scratch := make([]float64, 0, t.window)
	for _, m := range metrics {
		w := windows[m]
		scratch = w.Values(scratch[:0])
		sort.Float64s(scratch)
		st := SLOStageReport{
			Metric: m,
			Count:  len(scratch),
			P50:    Quantile(scratch, 0.50),
			P95:    Quantile(scratch, 0.95),
			P99:    Quantile(scratch, 0.99),
		}
		if b, ok := budgets[m]; ok {
			st.Quantile = b.Quantile
			st.Budget = b.Budget
			st.Value = Quantile(scratch, b.Quantile)
			st.Breached = st.Count > 0 && st.Value > b.Budget
			breaches := t.reg.Counter("slo." + m + ".breaches_total")
			if st.Breached {
				breaches.Inc()
				rep.Breaches++
			}
			st.Breaches = breaches.Value()
		}
		rep.Stages = append(rep.Stages, st)
	}
	if rep.Breached() && onBreach != nil {
		onBreach(rep)
	}
	return rep
}
