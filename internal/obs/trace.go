// Package obs is the pipeline observability layer: a lightweight
// span/trace API, a concurrency-safe metrics registry, and CLI
// profiling hooks shared by the four commands. It has no dependencies
// outside the standard library and is designed to be zero-cost when
// disabled: with no sink installed, StartSpan returns a nil *Span whose
// methods are nil-safe no-ops, so instrumented hot paths pay only a
// single atomic load per span site.
//
// Span names follow the paper's pipeline decomposition (Figure 4): the
// stages under core.Process are stage.range_select (D_max → R lookup,
// Section 3), stage.histogram, stage.equalize (GHE, Eq. 5–7),
// stage.plc (the Eq. 9 dynamic program), stage.driver (PLRD voltage
// programming, Eq. 10), stage.apply, stage.distortion and stage.power.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is the immutable record a Sink receives when a span ends.
type SpanData struct {
	// ID and Parent link the span into a tree; Parent is 0 for roots.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name identifies the pipeline stage (see the package comment).
	Name string `json:"name"`
	// Start is the wall-clock start; Duration is monotonic.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Attrs carries small key/value annotations (R, β, frame index…).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Sink consumes completed spans. Implementations must be safe for
// concurrent use: batch and video pipelines end spans from many
// goroutines.
type Sink interface {
	SpanEnd(SpanData)
}

var (
	sink   atomic.Pointer[sinkBox]
	spanID atomic.Uint64
)

// sinkBox wraps the interface so atomic.Pointer can hold it.
type sinkBox struct{ s Sink }

// SetSink installs the global span sink. Passing nil disables tracing
// (the fast path). The previous sink, if any, is returned.
func SetSink(s Sink) Sink {
	var prev *sinkBox
	if s == nil {
		prev = sink.Swap(nil)
	} else {
		prev = sink.Swap(&sinkBox{s: s})
	}
	if prev == nil {
		return nil
	}
	return prev.s
}

// TracingEnabled reports whether a sink is installed.
func TracingEnabled() bool { return sink.Load() != nil }

// Span is an in-flight timed operation. A nil *Span is valid and all
// its methods are no-ops, which is what StartSpan returns when tracing
// is disabled.
type Span struct {
	id     uint64
	parent uint64
	name   string
	start  time.Time
	mu     sync.Mutex
	attrs  map[string]any
	ended  bool
}

// StartSpan opens a root span. When no sink is installed it returns
// nil, and every derived Child is nil too, so the entire instrumented
// call tree costs one atomic load.
func StartSpan(name string) *Span {
	if sink.Load() == nil {
		return nil
	}
	return &Span{
		id:    spanID.Add(1),
		name:  name,
		start: time.Now(),
	}
}

// Child opens a span nested under s. On a nil receiver it behaves like
// StartSpan: callers thread an optional parent (for example
// core.Options.Trace) without caring whether one was supplied.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return StartSpan(name)
	}
	return &Span{
		id:     spanID.Add(1),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
}

// The typed setters check for nil before calling set so that with
// tracing disabled the value is never boxed into an interface — the
// annotation sites in the pipeline hot path stay allocation-free.

// SetFloat annotates the span. No-op on nil.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// SetInt annotates the span. No-op on nil.
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// SetBool annotates the span. No-op on nil.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// SetString annotates the span. No-op on nil.
func (s *Span) SetString(key, v string) {
	if s == nil {
		return
	}
	s.set(key, v)
}

func (s *Span) set(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// End closes the span and delivers it to the sink installed at end
// time. Ending twice delivers once; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	box := sink.Load()
	if box == nil {
		return
	}
	box.s.SpanEnd(SpanData{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: d,
		Attrs:    attrs,
	})
}

// Collector is a Sink that buffers spans in memory for inspection or a
// JSON dump (-trace-out).
type Collector struct {
	mu    sync.Mutex
	spans []SpanData
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// SpanEnd implements Sink.
func (c *Collector) SpanEnd(d SpanData) {
	c.mu.Lock()
	c.spans = append(c.spans, d)
	c.mu.Unlock()
}

// Spans returns a copy of the collected spans in completion order.
func (c *Collector) Spans() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SpanData, len(c.spans))
	copy(out, c.spans)
	return out
}

// Reset discards all collected spans.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.spans = nil
	c.mu.Unlock()
}

// Children returns a parent-ID → children index over the collected
// spans, each child list ordered by start time. Root spans are under
// key 0.
func (c *Collector) Children() map[uint64][]SpanData {
	spans := c.Spans()
	idx := make(map[uint64][]SpanData)
	for _, s := range spans {
		idx[s.Parent] = append(idx[s.Parent], s)
	}
	for k := range idx {
		sort.Slice(idx[k], func(i, j int) bool { return idx[k][i].Start.Before(idx[k][j].Start) })
	}
	return idx
}

// WriteJSON dumps the collected spans as a JSON array (start-time
// ordered) — the -trace-out format.
func (c *Collector) WriteJSON(w io.Writer) error {
	spans := c.Spans()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start.Equal(spans[j].Start) {
			return spans[i].ID < spans[j].ID
		}
		return spans[i].Start.Before(spans[j].Start)
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}
