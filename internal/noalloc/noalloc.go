// Package noalloc is the library behind cmd/hebsvet: a mechanized
// allocation proof for annotated hot-path functions. A function whose
// doc comment carries the directive
//
//	//hebs:noalloc
//
// is claimed to perform no heap allocation on any path through its
// body. The claim is checked against the compiler itself: the gate
// runs `go build -gcflags=-m` over every package holding annotations
// and parses the escape-analysis diagnostics ("X escapes to heap",
// "moved to heap: x"). Any such diagnostic positioned inside an
// annotated function's body is a finding, with file:line provenance
// straight from the compiler. Because gc attributes allocations from
// inlined callees to the call site's line, the proof extends through
// the inlined portion of the call tree for free.
//
// Known, deliberate allocations inside an annotated function (a cold
// error path, a goroutine fan-out that the serial hot path never
// takes) are excused line by line:
//
//	//hebs:noalloc-allow <reason>
//
// on the allocating line or the line immediately above. The reason is
// mandatory — a bare noalloc-allow is a scan error, so every excuse
// in the tree is documented at the site it excuses.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Directive spellings. The hebs: prefix namespace matches the
// hebslint:allow convention from internal/analysis.
const (
	directive      = "//hebs:noalloc"
	allowDirective = "//hebs:noalloc-allow"
)

// Annotation is one //hebs:noalloc-marked function.
type Annotation struct {
	// PkgDir is the package directory relative to the module root
	// ("internal/gray"); "." for the root package.
	PkgDir string
	// Func is the display name: "ApplyLUTPacked" or
	// "(*Engine).FusedApply" for methods.
	Func string
	// File is the source file relative to the module root.
	File string
	// Line is the func keyword's line; BodyEnd the closing brace's.
	// Escape diagnostics inside [Line, BodyEnd] count against the
	// annotation.
	Line, BodyEnd int
}

// Allow is one //hebs:noalloc-allow directive.
type Allow struct {
	// File is relative to the module root; the directive covers
	// diagnostics on Line and Line+1 (comment-above idiom).
	File   string
	Line   int
	Reason string
}

// Inventory is the module's annotation census — the `hebsvet -list`
// payload and the input to the gate.
type Inventory struct {
	Root        string
	Annotations []Annotation
	Allows      []Allow
}

// Scan walks the module rooted at root (the directory holding go.mod)
// and collects every noalloc annotation and allow directive from
// non-test files selected by the default build context. Directories
// named testdata, hidden and underscore-prefixed directories are
// skipped, matching the go tool. A malformed directive (noalloc not
// attached to a function declaration, noalloc-allow without a reason)
// is an error, not a silent skip: the annotation grammar is part of
// the proof.
func Scan(root string) (*Inventory, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	inv := &Inventory{Root: abs}
	for _, dir := range dirs {
		if err := scanDir(inv, abs, dir); err != nil {
			return nil, err
		}
	}
	return inv, nil
}

// ScanDir scans a single package directory (which may live under
// testdata — the self-test fixture does) into a fresh inventory.
func ScanDir(root, dir string) (*Inventory, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	inv := &Inventory{Root: abs}
	if err := scanDir(inv, abs, absDir); err != nil {
		return nil, err
	}
	return inv, nil
}

func scanDir(inv *Inventory, root, dir string) error {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil
		}
		return fmt.Errorf("noalloc: %s: %w", dir, err)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return err
	}
	fset := token.NewFileSet()
	for _, name := range bp.GoFiles {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		relFile := filepath.ToSlash(filepath.Join(rel, name))
		if rel == "." {
			relFile = name
		}
		if err := scanFile(inv, fset, f, filepath.ToSlash(rel), relFile); err != nil {
			return err
		}
	}
	return nil
}

// scanFile extracts this file's annotations and allow directives.
func scanFile(inv *Inventory, fset *token.FileSet, f *ast.File, pkgDir, relFile string) error {
	// Index every noalloc directive comment by line so unattached ones
	// can be diagnosed after the declaration walk consumes the rest.
	pending := make(map[int]token.Pos) // line -> directive position
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			switch {
			case text == directive || strings.HasPrefix(text, directive+" "):
				pending[fset.Position(c.Pos()).Line] = c.Pos()
			case text == allowDirective:
				pos := fset.Position(c.Pos())
				return fmt.Errorf("noalloc: %s:%d: %s requires a reason", relFile, pos.Line, allowDirective)
			case strings.HasPrefix(text, allowDirective+" "):
				reason := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
				if reason == "" {
					pos := fset.Position(c.Pos())
					return fmt.Errorf("noalloc: %s:%d: %s requires a reason", relFile, pos.Line, allowDirective)
				}
				pos := fset.Position(c.Pos())
				inv.Allows = append(inv.Allows, Allow{File: relFile, Line: pos.Line, Reason: reason})
			}
		}
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		annotated := false
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(c.Text)
			if text == directive || strings.HasPrefix(text, directive+" ") {
				annotated = true
				delete(pending, fset.Position(c.Pos()).Line)
			}
		}
		if !annotated {
			continue
		}
		if fd.Body == nil {
			pos := fset.Position(fd.Pos())
			return fmt.Errorf("noalloc: %s:%d: %s on a bodyless declaration", relFile, pos.Line, directive)
		}
		inv.Annotations = append(inv.Annotations, Annotation{
			PkgDir:  pkgDir,
			Func:    funcDisplayName(fd),
			File:    relFile,
			Line:    fset.Position(fd.Pos()).Line,
			BodyEnd: fset.Position(fd.Body.End()).Line,
		})
	}
	for line := range pending {
		return fmt.Errorf("noalloc: %s:%d: %s is not attached to a function declaration (it must sit in the func's doc comment)", relFile, line, directive)
	}
	return nil
}

// funcDisplayName renders "Name" or "(Recv).Name"/"(*Recv).Name".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := typeString(fd.Recv.List[0].Type)
	return "(" + recv + ")." + fd.Name.Name
}

func typeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeString(t.X)
	case *ast.IndexExpr: // generic receiver
		return typeString(t.X)
	case *ast.IndexListExpr:
		return typeString(t.X)
	}
	return "?"
}

// Packages returns the sorted set of package directories (relative to
// the root) holding at least one annotation.
func (inv *Inventory) Packages() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range inv.Annotations {
		if !seen[a.PkgDir] {
			seen[a.PkgDir] = true
			out = append(out, a.PkgDir)
		}
	}
	sort.Strings(out)
	return out
}

// WriteList renders the `hebsvet -list` inventory: one line per
// annotation in scan order, then the allow directives. The alloc-guard
// tests print the same rendering when a bare allocs/op count regresses,
// so a failure names the annotated functions to re-check rather than
// just a number; keep the format grep-friendly.
func (inv *Inventory) WriteList(w io.Writer) {
	fmt.Fprintf(w, "# %d //hebs:noalloc function(s) in %d package(s)\n",
		len(inv.Annotations), len(inv.Packages()))
	for _, a := range inv.Annotations {
		fmt.Fprintf(w, "%-28s %-34s %s:%d\n", a.PkgDir, a.Func, a.File, a.Line)
	}
	if len(inv.Allows) > 0 {
		fmt.Fprintf(w, "# %d //hebs:noalloc-allow directive(s)\n", len(inv.Allows))
		for _, al := range inv.Allows {
			fmt.Fprintf(w, "%s:%d: %s\n", al.File, al.Line, al.Reason)
		}
	}
}

// allowedAt reports whether an allow directive covers file:line (same
// line or the line above), returning its reason.
func (inv *Inventory) allowedAt(file string, line int) (string, bool) {
	for _, a := range inv.Allows {
		if a.File == file && (a.Line == line || a.Line == line-1) {
			return a.Reason, true
		}
	}
	return "", false
}

// covering returns the annotation whose body span contains file:line.
func (inv *Inventory) covering(file string, line int) *Annotation {
	for i := range inv.Annotations {
		a := &inv.Annotations[i]
		if a.File == file && line >= a.Line && line <= a.BodyEnd {
			return a
		}
	}
	return nil
}
