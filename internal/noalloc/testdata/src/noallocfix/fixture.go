// Package noallocfix is the hebsvet self-test fixture: a package with
// one annotated function that provably escapes, one that is provably
// clean, and one whose deliberate allocation carries an allow
// directive. The gate test asserts exactly these outcomes against the
// real compiler, so a gc release that changes its diagnostic spelling
// breaks the test — not silently the gate.
package noallocfix

// Escaping violates its own annotation: the pointer it returns forces
// the new(int) onto the heap, which the gate must report.
//
//hebs:noalloc
func Escaping() *int {
	x := new(int)
	*x = 42
	return x
}

// Clean is the true-negative case: pure register/stack arithmetic
// over caller-owned slices, no allocation on any path.
//
//hebs:noalloc
func Clean(dst, src []uint8) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = src[i] + 1
	}
}

// Excused allocates deliberately and says so: the allow directive
// must downgrade the finding without hiding it from -v output.
//
//hebs:noalloc
func Excused(n int) []int {
	//hebs:noalloc-allow fixture: deliberate allocation, documented here
	return make([]int, n)
}

// Unannotated allocates freely; nothing about it may appear in gate
// output.
func Unannotated() *int {
	return new(int)
}
