// The escape-analysis gate: compile annotated packages with
// -gcflags=-m and turn the compiler's own escape diagnostics into
// findings against the annotation inventory. The go build cache
// replays -m diagnostics for unchanged packages, so repeated gate runs
// cost one cache probe per package, not a recompile.
package noalloc

import (
	"bytes"
	"fmt"
	"os/exec"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Finding is one heap allocation inside an annotated function.
type Finding struct {
	// File:Line:Col is the allocation site as the compiler reports it
	// (File relative to the module root).
	File string
	Line int
	Col  int
	// Func is the annotated function the site sits in.
	Func string
	// PkgDir is the function's package directory.
	PkgDir string
	// Message is the compiler's diagnostic ("make([]int, n) escapes to
	// heap", "moved to heap: x").
	Message string
	// Allowed marks a finding excused by //hebs:noalloc-allow; Reason
	// carries the directive's rationale.
	Allowed bool
	Reason  string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s in %s %s", f.File, f.Line, f.Col, f.Message, f.Func, "(hebs:noalloc)")
	if f.Allowed {
		s += " [allowed: " + f.Reason + "]"
	}
	return s
}

// Check compiles every package in the inventory with escape-analysis
// diagnostics enabled and returns the findings (allowed ones
// included, so -v output can show what the directives excuse) in
// deterministic file/line order. A build failure — the annotated code
// must compile for the proof to mean anything — is returned as an
// error.
func Check(inv *Inventory) ([]Finding, error) {
	pkgs := inv.Packages()
	if len(pkgs) == 0 {
		return nil, nil
	}
	diags, err := escapeDiagnostics(inv.Root, pkgs)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, d := range diags {
		a := inv.covering(d.file, d.line)
		if a == nil {
			continue
		}
		f := Finding{
			File: d.file, Line: d.line, Col: d.col,
			Func: a.Func, PkgDir: a.PkgDir, Message: d.msg,
		}
		if reason, ok := inv.allowedAt(d.file, d.line); ok {
			f.Allowed = true
			f.Reason = reason
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out, nil
}

// diag is one parsed compiler diagnostic.
type diag struct {
	file      string
	line, col int
	msg       string
}

// escapeDiagnostics builds the packages (paths relative to root) with
// -gcflags=-m and returns every heap-allocation diagnostic. The
// -gcflags value without a pattern applies only to the packages named
// on the command line, which is exactly the annotated set.
func escapeDiagnostics(root string, pkgs []string) ([]diag, error) {
	args := []string{"build", "-gcflags=-m"}
	for _, p := range pkgs {
		args = append(args, "./"+path.Clean(p))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	runErr := cmd.Run()
	diags, parseErr := parseEscapeOutput(stderr.String())
	if runErr != nil {
		// -m output goes to stderr alongside any real compile error;
		// surface the raw tail so the failure is actionable.
		return nil, fmt.Errorf("noalloc: go %s: %v\n%s", strings.Join(args, " "), runErr, tail(stderr.String(), 30))
	}
	return diags, parseErr
}

// tail returns the last n lines of s.
func tail(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}

// heapDiagnostic reports whether a -m message names a heap
// allocation. The two spellings the gc compiler uses:
//
//	<expr> escapes to heap     (new/make/composite literal/boxing)
//	moved to heap: <var>       (stack variable promoted)
//
// "does not escape" and the inlining chatter are filtered by the
// suffix/prefix match.
func heapDiagnostic(msg string) bool {
	return strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap:")
}

// parseEscapeOutput extracts file:line:col heap diagnostics from the
// compiler's stderr. Lines that don't parse as positions ("# pkg"
// headers, flow traces from -m=2) are skipped.
func parseEscapeOutput(out string) ([]diag, error) {
	var diags []diag
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, ok := parseDiagLine(line)
		if !ok || !heapDiagnostic(d.msg) {
			continue
		}
		diags = append(diags, d)
	}
	return diags, nil
}

// parseDiagLine splits "file.go:12:34: message". The file part may
// contain path separators but no colons (true for module-relative
// paths on every platform the repo builds on).
func parseDiagLine(s string) (diag, bool) {
	parts := strings.SplitN(s, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return diag{}, false
	}
	line, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return diag{}, false
	}
	return diag{
		file: strings.TrimPrefix(parts[0], "./"),
		line: line,
		col:  col,
		msg:  strings.TrimSpace(parts[3]),
	}, true
}
