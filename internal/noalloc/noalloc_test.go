package noalloc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hebs/internal/analysis"
)

// fixtureInventory scans the self-test fixture package.
func fixtureInventory(t *testing.T) *Inventory {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "noalloc", "testdata", "src", "noallocfix")
	inv, err := ScanDir(root, dir)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

func TestScanFixtureInventory(t *testing.T) {
	inv := fixtureInventory(t)
	var names []string
	for _, a := range inv.Annotations {
		names = append(names, a.Func)
		if a.Line <= 0 || a.BodyEnd < a.Line {
			t.Errorf("%s: bad span %d..%d", a.Func, a.Line, a.BodyEnd)
		}
	}
	want := []string{"Escaping", "Clean", "Excused"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("annotated functions = %v, want %v", names, want)
	}
	if len(inv.Allows) != 1 || !strings.Contains(inv.Allows[0].Reason, "deliberate allocation") {
		t.Fatalf("allows = %+v, want the one fixture directive", inv.Allows)
	}
}

// TestGateAgainstCompiler is the hebsvet self-test: the gate must
// report the known-escaping annotated function (with provenance), let
// the clean one pass, and mark the excused one allowed. It shells out
// to the real go toolchain, exactly as the CLI does.
func TestGateAgainstCompiler(t *testing.T) {
	inv := fixtureInventory(t)
	findings, err := Check(inv)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	var hard, allowed []Finding
	for _, f := range findings {
		if f.Func == "Clean" {
			t.Errorf("clean function produced a finding: %s", f)
		}
		if f.Allowed {
			allowed = append(allowed, f)
		} else {
			hard = append(hard, f)
		}
	}
	if len(hard) == 0 {
		t.Fatal("gate missed the known-escaping annotated function")
	}
	for _, f := range hard {
		if f.Func != "Escaping" {
			t.Errorf("unexpected hard finding in %s: %s", f.Func, f)
		}
		if f.Line <= 0 || !strings.Contains(f.File, "noallocfix") {
			t.Errorf("finding lacks provenance: %+v", f)
		}
	}
	if len(allowed) != 1 || allowed[0].Func != "Excused" {
		t.Errorf("allowed findings = %v, want exactly the Excused one", allowed)
	}
}

func TestScanRejectsBareAllow(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\nfunc f() {\n\t//hebs:noalloc-allow\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanDir(dir, dir); err == nil || !strings.Contains(err.Error(), "requires a reason") {
		t.Fatalf("bare noalloc-allow error = %v, want 'requires a reason'", err)
	}
}

func TestScanRejectsUnattachedDirective(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\n//hebs:noalloc\n\nvar x int\n"
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanDir(dir, dir); err == nil || !strings.Contains(err.Error(), "not attached") {
		t.Fatalf("unattached directive error = %v, want 'not attached'", err)
	}
}

func TestParseDiagLine(t *testing.T) {
	d, ok := parseDiagLine("internal/gray/gray.go:33:9: &Image{...} escapes to heap")
	if !ok || d.file != "internal/gray/gray.go" || d.line != 33 || d.col != 9 {
		t.Fatalf("parseDiagLine = %+v, %v", d, ok)
	}
	if !heapDiagnostic(d.msg) {
		t.Errorf("heapDiagnostic(%q) = false", d.msg)
	}
	for _, s := range []string{
		"# hebs/internal/gray",
		"internal/gray/gray.go:65:6: can inline (*Image).Clone",
		"internal/gray/gray.go:94:25: inlining call to errors.New",
		"internal/gray/gray.go:42:7: m does not escape",
	} {
		if d, ok := parseDiagLine(s); ok && heapDiagnostic(d.msg) {
			t.Errorf("%q parsed as a heap diagnostic", s)
		}
	}
	if d, ok := parseDiagLine("internal/core/engine.go:100:3: moved to heap: x"); !ok || !heapDiagnostic(d.msg) {
		t.Errorf("moved-to-heap line not recognized: %+v %v", d, ok)
	}
}
