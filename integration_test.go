// Integration tests exercising cross-module flows end to end: the full
// HEBS pipeline into the hardware model and LCD simulator, file I/O
// round trips, the budget guarantee across the suite, and determinism
// of the whole evaluation.
package hebs

import (
	"math"
	"path/filepath"
	"testing"

	"hebs/internal/baseline"
	"hebs/internal/chart"
	"hebs/internal/core"
	"hebs/internal/driver"
	"hebs/internal/experiments"
	"hebs/internal/imageio"
	"hebs/internal/lcd"
	"hebs/internal/power"
	"hebs/internal/sipi"
	"hebs/internal/video"
)

func TestEndToEndImageToDisplay(t *testing.T) {
	// image -> HEBS -> PLRD program -> LCD simulator -> luminance.
	img, err := sipi.Generate("peppers", 96, 96)
	if err != nil {
		t.Fatal(err)
	}
	cfg := driver.DefaultConfig
	res, err := core.Process(img, core.Options{
		MaxDistortionPercent: 10,
		ExactSearch:          true,
		Driver:               &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}

	dispCfg := lcd.DefaultConfig()
	dispCfg.Width, dispCfg.Height = 96, 96
	display, err := lcd.New(dispCfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := display.ShowFrame(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := display.LoadProgram(res.Program); err != nil {
		t.Fatal(err)
	}
	dimmed, err := display.ShowFrame(img)
	if err != nil {
		t.Fatal(err)
	}

	// The simulator's power saving must track the pipeline's prediction.
	// The simulator includes DC-AC converter loss on the backlight
	// (which the analytic model omits), so allow a proportional band.
	simSaving := 100 * (1 - dimmed.TotalPower/full.TotalPower)
	if math.Abs(simSaving-res.PowerSavingPercent) > 8 {
		t.Errorf("simulator saving %.1f%% vs pipeline %.1f%%", simSaving, res.PowerSavingPercent)
	}
	// Displayed luminance approximates Λ(F).
	want := res.Lambda.Apply(img)
	worst := 0
	for i := range want.Pix {
		d := int(dimmed.Luminance.Pix[i]) - int(want.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 4 {
		t.Errorf("hardware luminance off by %d levels from Λ(F)", worst)
	}
}

func TestEndToEndFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig, err := sipi.Generate("girl", 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "in.png")
	if err := imageio.Save(in, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := imageio.Load(in)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(loaded) {
		t.Fatal("PNG round trip lost data")
	}
	res, err := core.Process(loaded, core.Options{DynamicRange: 150})
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.pgm")
	if err := imageio.Save(out, res.Transformed); err != nil {
		t.Fatal(err)
	}
	back, err := imageio.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Transformed.Equal(back) {
		t.Error("PGM round trip of the transformed image lost data")
	}
}

func TestBudgetGuaranteeAcrossSuite(t *testing.T) {
	// The exact-search mode's contract: the per-image predicted
	// distortion never exceeds the budget (unless even R=255 cannot
	// meet it, which does not happen at these budgets).
	suite, err := sipi.Suite(48, 48)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []float64{5, 15} {
		for _, ni := range suite {
			res, err := core.Process(ni.Image, core.Options{
				MaxDistortionPercent: budget,
				ExactSearch:          true,
			})
			if err != nil {
				t.Fatalf("%s: %v", ni.Name, err)
			}
			if res.PredictedDistortion > budget+1e-9 && res.Range < 255 {
				t.Errorf("%s at %v%%: predicted %v exceeds budget",
					ni.Name, budget, res.PredictedDistortion)
			}
		}
	}
}

func TestDeterminismOfFullEvaluation(t *testing.T) {
	cfg := experiments.Config{ImageSize: 32}
	a, err := experiments.Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for j := range a.Rows[i].Savings {
			if a.Rows[i].Savings[j] != b.Rows[i].Savings[j] {
				t.Fatalf("run-to-run divergence at %s budget %d", a.Rows[i].Name, j)
			}
		}
	}
}

func TestMethodsShareDistortionContract(t *testing.T) {
	// HEBS and both baselines, given the same budget and metric, must
	// each measure within it — so the power comparison is fair.
	img, err := sipi.Generate("west", 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 12.0
	h, err := core.Process(img, core.Options{MaxDistortionPercent: budget, ExactSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := baseline.CBCS(img, budget, nil, power.DefaultSubsystem)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := baseline.DLSContrast(img, budget, nil, power.DefaultSubsystem)
	if err != nil {
		t.Fatal(err)
	}
	if h.PredictedDistortion > budget+1e-9 {
		t.Errorf("HEBS predicted %v over budget", h.PredictedDistortion)
	}
	if cb.Distortion > budget+1e-9 && cb.Beta < 1 {
		t.Errorf("CBCS distortion %v over budget", cb.Distortion)
	}
	if dl.Distortion > budget+1e-9 && dl.Beta < 1 {
		t.Errorf("DLS distortion %v over budget", dl.Distortion)
	}
}

func TestVideoPipelineEnergySaving(t *testing.T) {
	base, err := sipi.Generate("autumn", 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	clip, err := video.Pan(base, 64, 64, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := video.Process(clip, video.Policy{
		MaxStep: 0.05,
		Options: core.Options{MaxDistortionPercent: 10, ExactSearch: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanSaving < 20 {
		t.Errorf("video pipeline saved only %.1f%%", res.MeanSaving)
	}
	for i, f := range res.Frames {
		if f.Distortion > 10+5 { // smoothing can only reduce distortion
			t.Errorf("frame %d distortion %v far over budget", i, f.Distortion)
		}
	}
}

func TestCurveLookupConservativeVsExact(t *testing.T) {
	// The worst-case global curve must never admit a smaller range than
	// the image's own exact search (it bounds all benchmark images).
	curve, err := chart.Build(mustSuite(t, 48), chart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lena", "pout", "baboon"} {
		img, err := sipi.Generate(name, 48, 48)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := chart.MinRangeExact(img, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := curve.MinRange(10, true)
		if err != nil {
			t.Fatal(err)
		}
		// Allow the sweep-grid granularity: the curve only knows the ten
		// swept ranges.
		if worst < exact-25 {
			t.Errorf("%s: worst-case curve range %d below exact %d", name, worst, exact)
		}
	}
}

func mustSuite(t *testing.T, size int) []sipi.NamedImage {
	t.Helper()
	suite, err := sipi.Suite(size, size)
	if err != nil {
		t.Fatal(err)
	}
	return suite
}
